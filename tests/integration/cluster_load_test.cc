// End-to-end integration: graph cluster + open-loop load generator +
// admission control, on real threads and the real clock. Kept short;
// asserts conservation and qualitative behaviour, not exact latencies.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/graph/cluster.h"
#include "src/graph/graph_generator.h"
#include "src/server/metrics_collector.h"
#include "src/workload/load_generator.h"

namespace bouncer {
namespace {

using graph::Cluster;
using graph::GraphOp;
using graph::GraphQuery;
using graph::GraphQueryResult;
using graph::GraphStore;

const Slo kSlo{18 * kMillisecond, 50 * kMillisecond, 0};

class ClusterLoadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph::GeneratorOptions options;
    options.num_vertices = 30'000;
    options.edges_per_vertex = 8;
    graph_ = new GraphStore(graph::GeneratePreferentialAttachment(options));
  }

  struct RunOutcome {
    uint64_t sent = 0;
    server::TypeReport overall;
    server::TypeReport qt11;
  };

  RunOutcome DriveLoad(const PolicyConfig& broker_policy, double qps,
                       Nanos duration) {
    QueryTypeRegistry registry = Cluster::MakeRegistry(kSlo);
    Cluster::Options options;
    options.num_brokers = 1;
    options.broker_workers = 4;
    options.num_shards = 2;
    options.shard_workers = 1;
    options.broker_policy = broker_policy;
    options.shard_policy.kind = PolicyKind::kAlwaysAccept;
    Cluster cluster(graph_, &registry, SystemClock::Global(), options);
    EXPECT_TRUE(cluster.Start().ok());

    server::MetricsCollector metrics(registry.size());
    std::atomic<uint64_t> callbacks{0};
    const auto mix = workload::PaperRealSystemMix();
    Rng query_rng(3);
    workload::LoadGenerator::Options generator_options;
    generator_options.rate_qps = qps;
    generator_options.duration = duration;
    workload::LoadGenerator generator(
        &mix, generator_options, [&](size_t type_index) {
          const GraphQuery query = Cluster::SampleQuery(
              static_cast<GraphOp>(type_index), *graph_, query_rng);
          cluster.Submit(query, 0,
                         [&](const server::WorkItem& item,
                             server::Outcome outcome,
                             const GraphQueryResult&) {
                           metrics.Record(item, outcome);
                           callbacks.fetch_add(1);
                         });
        });
    RunOutcome outcome;
    outcome.sent = generator.Run();
    // Drain in-flight work, then stop.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (callbacks.load() < outcome.sent &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    cluster.Stop();
    EXPECT_EQ(callbacks.load(), outcome.sent) << "lost completions";
    outcome.overall = metrics.Overall();
    outcome.qt11 = metrics.Report(Cluster::TypeIdFor(GraphOp::kDistance4));
    return outcome;
  }

  static GraphStore* graph_;
};

GraphStore* ClusterLoadTest::graph_ = nullptr;

TEST_F(ClusterLoadTest, EveryQueryGetsExactlyOneOutcome) {
  PolicyConfig policy;
  policy.kind = PolicyKind::kAlwaysAccept;
  const auto outcome = DriveLoad(policy, 150, 2 * kSecond);
  EXPECT_GT(outcome.sent, 100u);
  EXPECT_EQ(outcome.overall.received, outcome.sent);
  EXPECT_EQ(outcome.overall.received,
            outcome.overall.completed + outcome.overall.rejected +
                outcome.overall.expired);
}

TEST_F(ClusterLoadTest, LightLoadMostlyAccepted) {
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncerWithAllowance;
  policy.bouncer.histogram_swap_interval = kSecond;
  policy.allowance.allowance = 0.05;
  const auto outcome = DriveLoad(policy, 60, 3 * kSecond);
  EXPECT_LT(outcome.overall.rejection_pct, 30.0);
  EXPECT_GT(outcome.overall.completed, 0u);
}

TEST_F(ClusterLoadTest, OverloadTriggersEarlyRejections) {
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncerWithAllowance;
  policy.bouncer.histogram_swap_interval = kSecond;
  policy.allowance.allowance = 0.05;
  policy.queue_guard_limit = 16;
  // 600 QPS overloaded the pre-optimization scatter path; the pooled/
  // async path sustains several times that, so push harder to get the
  // cluster genuinely past saturation.
  const auto outcome = DriveLoad(policy, 2400, 4 * kSecond);
  EXPECT_GT(outcome.overall.rejection_pct, 10.0);
  // The costly QT11 bears the brunt (paper §5.4).
  EXPECT_GT(outcome.qt11.rejection_pct, outcome.overall.rejection_pct);
}

TEST_F(ClusterLoadTest, DeadlinesExpireQueuedWork) {
  PolicyConfig policy;
  policy.kind = PolicyKind::kAlwaysAccept;
  QueryTypeRegistry registry = Cluster::MakeRegistry(kSlo);
  Cluster::Options options;
  options.num_brokers = 1;
  options.broker_workers = 1;  // Single worker: queueing guaranteed.
  options.num_shards = 1;
  options.shard_workers = 1;
  options.broker_policy = policy;
  options.shard_policy.kind = PolicyKind::kAlwaysAccept;
  Cluster cluster(graph_, &registry, SystemClock::Global(), options);
  ASSERT_TRUE(cluster.Start().ok());
  std::atomic<int> expired{0};
  std::atomic<int> done{0};
  Rng rng(5);
  const Nanos now = SystemClock::Global()->Now();
  constexpr int kQueries = 60;
  for (int i = 0; i < kQueries; ++i) {
    const GraphQuery query =
        Cluster::SampleQuery(GraphOp::kDistance4, *graph_, rng);
    cluster.Submit(query, now + 20 * kMillisecond,
                   [&](const server::WorkItem&, server::Outcome outcome,
                       const GraphQueryResult&) {
                     if (outcome == server::Outcome::kExpired)
                       expired.fetch_add(1);
                     done.fetch_add(1);
                   });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (done.load() < kQueries &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  cluster.Stop();
  ASSERT_EQ(done.load(), kQueries);
  // A burst of expensive queries against one worker: most deadlines pass
  // while queued, and expired work skips processing entirely.
  EXPECT_GT(expired.load(), kQueries / 2);
}

}  // namespace
}  // namespace bouncer
