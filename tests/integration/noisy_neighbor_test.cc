// Noisy-neighbor scenario, end to end at the stage level: an aggressor
// tenant offers most of the load against three well-behaved tenants on a
// bounded queue. With weighted-fair admission (TenantFairPolicy flood
// guard) the quiet tenants' share of completed service must be at least
// what share-blind admission gives them — the multi-tenant acceptance
// bar of the high-cardinality refactor.
//
// The stage is never Start()ed: the test interleaves Submit() with
// TryRunOne() on one thread (one dequeue every kSubmitsPerServe
// submissions = a fixed overload factor), so admission decisions, queue
// dynamics, and per-tenant completion counts are deterministic.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/core/tenant_registry.h"
#include "src/server/stage.h"
#include "src/util/rng.h"
#include "src/workload/tenant_mix.h"

namespace bouncer::server {
namespace {

const Slo kSlo{18 * kMillisecond, 50 * kMillisecond, 0};

constexpr size_t kNumTenants = 4;
constexpr int kSubmits = 30'000;
constexpr int kSubmitsPerServe = 3;  // Offered load = 3x service rate.

struct RunResult {
  std::array<int, kNumTenants> completed{};
  std::array<int, kNumTenants> offered{};
  int total_completed = 0;

  double QuietShare() const {
    int quiet = 0;
    for (size_t i = 1; i < kNumTenants; ++i) quiet += completed[i];
    return total_completed == 0
               ? 0.0
               : static_cast<double>(quiet) / total_completed;
  }
};

RunResult RunScenario(bool fair) {
  QueryTypeRegistry registry(kSlo);
  const QueryTypeId type_id = *registry.Register("t", kSlo);
  TenantRegistry tenants;
  const workload::TenantMix mix =
      workload::NoisyNeighborMix(kNumTenants, /*aggressor_share=*/0.8);
  const StatusOr<std::vector<TenantId>> dense_ids =
      mix.PopulateRegistry(&tenants);
  EXPECT_TRUE(dense_ids.ok());

  PolicyConfig config;
  config.kind = PolicyKind::kMaxQueueLength;
  config.max_queue_length.length_limit = 16;
  if (fair) {
    config.tenant_fair = true;
    config.tenant_fair_options.alpha = 0.0;  // Isolate the flood guard.
    config.tenant_fair_options.flood_guard_limit = 8;
    config.tenant_fair_options.share_slack = 1.0;
    config.tenant_fair_options.min_share = 2;
  }

  Stage::Options options;
  options.name = "noisy";
  options.num_workers = 1;
  options.tenants = &tenants;
  RunResult result;
  Stage stage(
      options, &registry, SystemClock::Global(),
      [&config](const PolicyContext& context) {
        return CreatePolicy(config, context);
      },
      [](WorkItem&) {});
  EXPECT_TRUE(stage.init_status().ok());

  Rng rng(1234);
  for (int i = 0; i < kSubmits; ++i) {
    const size_t mix_index = mix.SampleIndex(rng);
    WorkItem item;
    item.type = type_id;
    item.tenant = (*dense_ids)[mix_index];
    ++result.offered[mix_index];
    item.on_complete = [&result, mix_index](const WorkItem&,
                                            Outcome outcome) {
      if (outcome == Outcome::kCompleted) {
        ++result.completed[mix_index];
        ++result.total_completed;
      }
    };
    stage.Submit(std::move(item));
    if (i % kSubmitsPerServe == 0) (void)stage.TryRunOne();
  }
  while (stage.TryRunOne()) {
  }
  return result;
}

TEST(NoisyNeighborIntegrationTest, FairAdmissionProtectsQuietTenants) {
  const RunResult blind = RunScenario(/*fair=*/false);
  const RunResult fair = RunScenario(/*fair=*/true);

  // Identical offered traffic (same seed), meaningful service in both.
  EXPECT_EQ(blind.offered, fair.offered);
  EXPECT_GT(blind.total_completed, kSubmits / kSubmitsPerServe / 2);
  EXPECT_GT(fair.total_completed, kSubmits / kSubmitsPerServe / 2);

  // Share-blind admission serves roughly the offered mix: the aggressor
  // (80% of arrivals) hogs roughly 80% of the bounded queue.
  EXPECT_LT(blind.QuietShare(), 0.35);

  // The flood guard caps the aggressor near its weighted queue share, so
  // the quiet tenants' slice of completed service must not shrink — and
  // with equal weights it should grow substantially.
  EXPECT_GE(fair.QuietShare(), blind.QuietShare());
  EXPECT_GT(fair.QuietShare(), blind.QuietShare() + 0.10);

  // Every quiet tenant individually gains service (no one is starved to
  // fund another).
  for (size_t i = 1; i < kNumTenants; ++i) {
    EXPECT_GE(fair.completed[i], blind.completed[i]) << "tenant " << i;
  }
}

}  // namespace
}  // namespace bouncer::server
