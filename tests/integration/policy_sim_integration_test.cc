// Cross-module integration tests: the paper's headline claims, checked
// end-to-end in the discrete-event simulator (policies + stats + sim +
// workload together).

#include <gtest/gtest.h>

#include "src/sim/experiment.h"

namespace bouncer {
namespace {

using sim::SimulationConfig;
using sim::SimulationResult;
using sim::Simulator;

const Slo kSlo{18 * kMillisecond, 50 * kMillisecond, 0};

SimulationConfig StudyConfig(double qps) {
  SimulationConfig config;
  config.parallelism = 100;
  config.arrival_rate_qps = qps;
  config.total_queries = 250'000;
  config.warmup_queries = 100'000;
  config.seed = 17;
  return config;
}

PolicyConfig StudyPolicy(PolicyKind kind) {
  PolicyConfig config;
  config.kind = kind;
  config.bouncer.histogram_swap_interval = 2 * kSecond;
  config.bouncer.min_samples_to_publish = 30;
  config.allowance.allowance = 0.05;
  config.max_queue_length.length_limit = 400;
  config.max_queue_wait.wait_time_limit = 15 * kMillisecond;
  config.accept_fraction.max_utilization = 0.95;
  config.accept_fraction.window_duration = kSecond;
  config.accept_fraction.window_step = 50 * kMillisecond;
  config.accept_fraction.update_interval = 50 * kMillisecond;
  return config;
}

SimulationResult RunStudy(PolicyKind kind, double factor) {
  const auto workload = workload::PaperSimulationWorkload();
  const double qps = factor * workload.FullLoadQps(100);
  Simulator simulator(workload, StudyConfig(qps), StudyPolicy(kind));
  return simulator.Run();
}

// Paper Fig. 3: under basic Bouncer, a FAST majority starves a SLOW type
// sharing the same SLO; acceptance-allowance guarantees it service.
TEST(StarvationIntegrationTest, AllowanceBreaksStarvation) {
  // The paper's Table 1 mix at 1.5x full load: basic Bouncer rejects
  // ~98% of the slow type (Table 3) — systemic denial of service —
  // while never touching the fast types.
  const auto workload = workload::PaperSimulationWorkload();
  const double qps = 1.5 * workload.FullLoadQps(100);

  Simulator basic(workload, StudyConfig(qps),
                  StudyPolicy(PolicyKind::kBouncer));
  const auto basic_result = basic.Run();
  EXPECT_GT(basic_result.per_type[3].rejection_pct, 90.0);  // slow starves.
  EXPECT_LT(basic_result.per_type[0].rejection_pct, 1.0);   // fast cruises.

  Simulator with_allowance(workload, StudyConfig(qps),
                           StudyPolicy(PolicyKind::kBouncerWithAllowance));
  const auto allowance_result = with_allowance.Run();
  // A = 0.05 guarantees ~5% of the slow type gets serviced.
  EXPECT_LT(allowance_result.per_type[3].rejection_pct, 96.5);
  EXPECT_GT(allowance_result.per_type[3].completed, 100u);
}

// Paper Fig. 6 + Fig. 8 at one overload point: Bouncer alone keeps the
// tightest type inside its SLO while rejecting fewer queries overall
// than the type-oblivious policies.
TEST(PolicyComparisonIntegrationTest, BouncerMeetsSloWithFewestRejections) {
  const auto bouncer_result = RunStudy(PolicyKind::kBouncer, 1.3);
  const auto max_ql = RunStudy(PolicyKind::kMaxQueueLength, 1.3);
  const auto max_qwt = RunStudy(PolicyKind::kMaxQueueWait, 1.3);
  const auto accept_fraction = RunStudy(PolicyKind::kAcceptFraction, 1.3);

  EXPECT_LT(bouncer_result.per_type[3].rt_p50_ms, 19.0);
  EXPECT_GT(max_ql.per_type[3].rt_p50_ms, 30.0);   // Plateau ~40 ms.
  EXPECT_GT(max_qwt.per_type[3].rt_p50_ms, 20.0);  // Plateau ~22-27 ms.

  EXPECT_LT(bouncer_result.overall.rejection_pct,
            max_ql.overall.rejection_pct);
  EXPECT_LT(bouncer_result.overall.rejection_pct,
            max_qwt.overall.rejection_pct);
  EXPECT_LT(bouncer_result.overall.rejection_pct,
            accept_fraction.overall.rejection_pct);
}

// Paper Table 3 shape: only the costly types are rejected; cheap types
// ride free even at 1.5x overload.
TEST(PolicyComparisonIntegrationTest, OnlyCostlyTypesRejected) {
  const auto result = RunStudy(PolicyKind::kBouncer, 1.5);
  EXPECT_EQ(result.per_type[0].rejected, 0u);  // fast.
  EXPECT_EQ(result.per_type[1].rejected, 0u);  // medium fast.
  EXPECT_GT(result.per_type[3].rejection_pct, 80.0);  // slow.
}

// Paper Fig. 14: per-type-tuned MaxQWT approximates Bouncer.
TEST(PolicyComparisonIntegrationTest, TunedMaxQwtMatchesBouncer) {
  PolicyConfig tuned = StudyPolicy(PolicyKind::kMaxQueueWait);
  tuned.max_queue_wait.per_type_limits = {
      0, FromMillis(17.6), FromMillis(15.8), FromMillis(10.6),
      FromMillis(5.5)};
  const auto workload = workload::PaperSimulationWorkload();
  const double qps = 1.3 * workload.FullLoadQps(100);
  Simulator tuned_sim(workload, StudyConfig(qps), tuned);
  const auto tuned_result = tuned_sim.Run();
  const auto bouncer_result = RunStudy(PolicyKind::kBouncer, 1.3);
  // Within a few ms of each other on the slow type, both near the SLO.
  EXPECT_NEAR(tuned_result.per_type[3].rt_p50_ms,
              bouncer_result.per_type[3].rt_p50_ms, 6.0);
  EXPECT_LT(tuned_result.per_type[3].rt_p50_ms, 22.0);
  // And rejections within a few points.
  EXPECT_NEAR(tuned_result.overall.rejection_pct,
              bouncer_result.overall.rejection_pct, 4.0);
}

// Paper Fig. 7: utilization near 1 for Bouncer even while enforcing SLOs
// (the policy does not prevent full-capacity operation, paper §2).
TEST(PolicyComparisonIntegrationTest, BouncerReachesFullUtilization) {
  const auto result = RunStudy(PolicyKind::kBouncer, 1.2);
  EXPECT_GT(result.utilization, 0.97);
}

// Starvation-avoidance cost (paper §5.3.2): a modest rejection increase
// and SLO violations that stay close to the objective.
TEST(StrategyCostIntegrationTest, ModestOverheadVsBasic) {
  const auto basic = RunStudy(PolicyKind::kBouncer, 1.4);
  const auto allowance = RunStudy(PolicyKind::kBouncerWithAllowance, 1.4);
  const auto underserved = RunStudy(PolicyKind::kBouncerWithUnderserved, 1.4);
  // Strategies reject slightly more overall...
  EXPECT_LT(allowance.overall.rejection_pct,
            basic.overall.rejection_pct + 4.0);
  EXPECT_LT(underserved.overall.rejection_pct,
            basic.overall.rejection_pct + 5.0);
  // ...and let the slow type exceed the SLO, but only moderately.
  EXPECT_LT(allowance.per_type[3].rt_p50_ms, 26.0);
  EXPECT_LT(underserved.per_type[3].rt_p50_ms, 26.0);
}

}  // namespace
}  // namespace bouncer
