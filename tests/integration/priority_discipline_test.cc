// Integration of the §7 future-work extensions: non-FIFO scheduling in
// the simulator combined with Bouncer's priority-aware wait estimation.

#include <gtest/gtest.h>

#include "src/sim/simulator.h"

namespace bouncer {
namespace {

using sim::QueueDiscipline;
using sim::SimulationConfig;
using sim::Simulator;

SimulationConfig Config(double qps) {
  SimulationConfig config;
  config.parallelism = 100;
  config.arrival_rate_qps = qps;
  config.total_queries = 250'000;
  config.warmup_queries = 100'000;
  config.seed = 31;
  return config;
}

PolicyConfig BouncerConfig() {
  PolicyConfig config;
  config.kind = PolicyKind::kBouncer;
  config.bouncer.histogram_swap_interval = 2 * kSecond;
  config.bouncer.min_samples_to_publish = 30;
  return config;
}

// Under slow-first priority scheduling, FIFO-Bouncer's Eq. 2 badly
// under-estimates the de-prioritized fast type's wait, so serviced fast
// queries blow through their SLO; the priority-aware estimate instead
// rejects what cannot be served in time.
TEST(PriorityDisciplineIntegrationTest, PriorityAwareEstimateIsHonest) {
  const auto workload = workload::PaperSimulationWorkload();
  auto config = Config(1.2 * workload.FullLoadQps(100));
  config.discipline = QueueDiscipline::kPriority;
  config.type_priorities = {3, 2, 1, 0};  // Slow served first.

  Simulator fifo_estimate(workload, config, BouncerConfig());
  const auto naive = fifo_estimate.Run();
  // Serviced fast queries violate SLO_p50 = 18 ms badly under the naive
  // estimate.
  EXPECT_GT(naive.per_type[0].rt_p50_ms, 30.0);

  PolicyConfig aware = BouncerConfig();
  aware.bouncer.type_priorities = {0, 3, 2, 1, 0};  // id 0 = default.
  Simulator aware_sim(workload, config, aware);
  const auto honest = aware_sim.Run();
  // The priority-aware policy refuses to serve fast queries in violation
  // — whatever it does serve meets the objective.
  if (honest.per_type[0].completed > 100) {
    EXPECT_LT(honest.per_type[0].rt_p50_ms, 19.0);
  }
  // And the types served first stay within their SLO too.
  EXPECT_LT(honest.per_type[3].rt_p50_ms, 19.0);
}

// Under SJF the slow type waits longer than under FIFO, so basic Bouncer
// rejects more of it (the Gatekeeper-style discipline trades starvation
// for mean response time, paper §6).
TEST(PriorityDisciplineIntegrationTest, SjfShiftsRejectionsToSlow) {
  const auto workload = workload::PaperSimulationWorkload();
  auto config = Config(1.2 * workload.FullLoadQps(100));

  Simulator fifo_sim(workload, config, BouncerConfig());
  const auto fifo = fifo_sim.Run();

  config.discipline = QueueDiscipline::kShortestJobFirst;
  Simulator sjf_sim(workload, config, BouncerConfig());
  const auto sjf = sjf_sim.Run();

  EXPECT_GE(sjf.per_type[3].rejection_pct,
            fifo.per_type[3].rejection_pct - 2.0);
  // Cheap types profit from SJF: their waits (and rt) shrink.
  EXPECT_LT(sjf.per_type[0].rt_p50_ms, fifo.per_type[0].rt_p50_ms);
}

}  // namespace
}  // namespace bouncer
