// Shared helpers for parametrizing the net test suites over the
// NetServer event-loop backend. Each suite instantiates its cases once
// per backend; io_uring cases skip visibly — with the kernel probe's
// reason — on boxes or builds without support, so a green run on an
// epoll-only kernel is never mistaken for io_uring coverage.

#ifndef BOUNCER_TESTS_NET_BACKEND_TEST_UTIL_H_
#define BOUNCER_TESTS_NET_BACKEND_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>

#include "src/net/net_server.h"

namespace bouncer::net {

/// Test-name suffix per parametrized case ("epoll" / "io_uring").
inline std::string BackendParamName(
    const ::testing::TestParamInfo<NetBackend>& info) {
  return NetBackendName(info.param);
}

/// Call first in every TEST_P body: skips io_uring cases (with the
/// probe's reason) when the kernel or build can't run them.
#define BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(backend)                   \
  do {                                                                   \
    std::string bouncer_backend_reason_;                                 \
    if ((backend) == ::bouncer::net::NetBackend::kUring &&               \
        !::bouncer::net::NetServer::UringSupported(                      \
            &bouncer_backend_reason_)) {                                 \
      GTEST_SKIP() << "io_uring backend unavailable: "                   \
                   << bouncer_backend_reason_;                           \
    }                                                                    \
  } while (0)

}  // namespace bouncer::net

#endif  // BOUNCER_TESTS_NET_BACKEND_TEST_UTIL_H_
