#include "src/net/byte_ring.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace bouncer::net {
namespace {

TEST(ByteRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ByteRing(1).capacity(), 64u);   // floor is 64
  EXPECT_EQ(ByteRing(64).capacity(), 64u);
  EXPECT_EQ(ByteRing(65).capacity(), 128u);
  EXPECT_EQ(ByteRing(1000).capacity(), 1024u);
}

TEST(ByteRingTest, WritePeekConsume) {
  ByteRing ring(64);
  const char msg[] = "hello, ring";
  ASSERT_EQ(ring.Write(msg, sizeof(msg)), sizeof(msg));
  EXPECT_EQ(ring.size(), sizeof(msg));
  EXPECT_EQ(ring.free_space(), ring.capacity() - sizeof(msg));

  char out[sizeof(msg)] = {};
  ASSERT_TRUE(ring.Peek(0, out, sizeof(msg)));
  EXPECT_STREQ(out, msg);
  EXPECT_EQ(ring.size(), sizeof(msg)) << "Peek must not consume";

  char tail[5] = {};
  ASSERT_TRUE(ring.Peek(7, tail, 4));  // offset peek
  EXPECT_STREQ(tail, "ring");

  ring.Consume(sizeof(msg));
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.Peek(0, out, 1)) << "nothing buffered after Consume";
}

TEST(ByteRingTest, WriteTruncatesAtCapacity) {
  ByteRing ring(64);
  std::vector<uint8_t> big(100, 0xab);
  EXPECT_EQ(ring.Write(big.data(), big.size()), 64u);
  EXPECT_EQ(ring.size(), 64u);
  EXPECT_EQ(ring.Write(big.data(), 1), 0u) << "full ring accepts nothing";
}

TEST(ByteRingTest, DataSurvivesWrapAround) {
  ByteRing ring(64);
  std::vector<uint8_t> pattern(48);
  std::iota(pattern.begin(), pattern.end(), 0);
  // Advance the cursors so the next write straddles the physical end.
  ASSERT_EQ(ring.Write(pattern.data(), 40), 40u);
  ring.Consume(40);
  ASSERT_EQ(ring.Write(pattern.data(), 48), 48u);  // wraps at byte 24

  std::vector<uint8_t> out(48);
  ASSERT_TRUE(ring.Peek(0, out.data(), out.size()));
  EXPECT_EQ(out, pattern);
}

TEST(ByteRingTest, WritableSegmentsSplitAtWrap) {
  ByteRing ring(64);
  uint8_t junk[40] = {};
  ring.Write(junk, 40);
  ring.Consume(40);  // head = tail = 40: free space wraps

  struct iovec iov[2];
  const int n = ring.WritableSegments(iov);
  ASSERT_EQ(n, 2);
  EXPECT_EQ(iov[0].iov_len, 24u);  // bytes 40..63
  EXPECT_EQ(iov[1].iov_len, 40u);  // bytes 0..39
  EXPECT_EQ(iov[0].iov_len + iov[1].iov_len, ring.free_space());

  // Depositing into the segments then committing is equivalent to Write.
  std::memset(iov[0].iov_base, 0x11, iov[0].iov_len);
  std::memset(iov[1].iov_base, 0x22, iov[1].iov_len);
  ring.CommitWrite(64);
  EXPECT_EQ(ring.size(), 64u);
  uint8_t out[64];
  ASSERT_TRUE(ring.Peek(0, out, 64));
  EXPECT_EQ(out[0], 0x11);
  EXPECT_EQ(out[23], 0x11);
  EXPECT_EQ(out[24], 0x22);
  EXPECT_EQ(out[63], 0x22);
}

TEST(ByteRingTest, ReadableSegmentsSplitAtWrap) {
  ByteRing ring(64);
  uint8_t junk[40] = {};
  ring.Write(junk, 40);
  ring.Consume(40);
  uint8_t data[32];
  for (size_t i = 0; i < sizeof(data); ++i) data[i] = static_cast<uint8_t>(i);
  ring.Write(data, sizeof(data));  // 24 bytes at the end, 8 at the front

  struct iovec iov[2];
  const int n = ring.ReadableSegments(iov);
  ASSERT_EQ(n, 2);
  EXPECT_EQ(iov[0].iov_len, 24u);
  EXPECT_EQ(iov[1].iov_len, 8u);
  EXPECT_EQ(static_cast<uint8_t*>(iov[0].iov_base)[0], 0);
  EXPECT_EQ(static_cast<uint8_t*>(iov[1].iov_base)[7], 31);
}

TEST(ByteRingTest, SingleSegmentWhenContiguous) {
  ByteRing ring(64);
  uint8_t data[16] = {};
  ring.Write(data, sizeof(data));
  struct iovec iov[2];
  EXPECT_EQ(ring.ReadableSegments(iov), 1);
  EXPECT_EQ(iov[0].iov_len, 16u);
  ring.Consume(16);
  EXPECT_EQ(ring.ReadableSegments(iov), 0);
}

TEST(ByteRingTest, ClearResetsCursors) {
  ByteRing ring(64);
  uint8_t data[10] = {};
  ring.Write(data, sizeof(data));
  ring.Clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.free_space(), ring.capacity());
}

TEST(ByteRingTest, LongStreamKeepsByteOrder) {
  // Push a deterministic byte stream through a small ring in uneven
  // chunks, draining with Peek/Consume, and check nothing is lost,
  // duplicated, or reordered across many wrap-arounds.
  ByteRing ring(64);
  uint32_t next_in = 0;
  uint32_t next_out = 0;
  const uint32_t kTotal = 10'000;
  size_t step = 1;
  while (next_out < kTotal) {
    while (next_in < kTotal && ring.free_space() > 0) {
      uint8_t chunk[17];
      size_t n = 0;
      while (n < 1 + (step % 17) && next_in < kTotal) {
        chunk[n++] = static_cast<uint8_t>(next_in++ & 0xff);
      }
      const size_t wrote = ring.Write(chunk, n);
      next_in -= static_cast<uint32_t>(n - wrote);  // retry unwritten bytes
      ++step;
    }
    uint8_t out[23];
    const size_t want = std::min<size_t>(1 + (step % 23), ring.size());
    if (want > 0 && ring.Peek(0, out, want)) {
      for (size_t i = 0; i < want; ++i) {
        ASSERT_EQ(out[i], static_cast<uint8_t>(next_out & 0xff));
        ++next_out;
      }
      ring.Consume(want);
    }
    ++step;
  }
  EXPECT_EQ(next_out, kTotal);
}

}  // namespace
}  // namespace bouncer::net
