// Admin-endpoint and rejection-reason tests: kStatsSnapshot (JSON),
// Prometheus text and kTraceDump fetched from a loaded NetServer via the
// blocking admin client, plus the per-reason rejection counters the
// response flags byte carries back to NetClient. The suite runs once per
// event-loop backend (io_uring cases skip with the probe's reason where
// unsupported) and checks the snapshot's net.backend_io_uring gauge
// reports the backend that served it.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "src/graph/cluster.h"
#include "src/graph/graph_generator.h"
#include "src/net/admin_client.h"
#include "src/net/net_client.h"
#include "src/net/net_server.h"
#include "src/stats/flight_recorder.h"
#include "src/stats/metric_registry.h"
#include "tests/net/backend_test_util.h"

namespace bouncer::net {
namespace {

using graph::Cluster;
using graph::GraphOp;
using graph::GraphStore;

GraphStore MakeGraph() {
  graph::GeneratorOptions options;
  options.num_vertices = 2'000;
  options.edges_per_vertex = 6;
  return graph::GeneratePreferentialAttachment(options);
}

/// Harness with the full observability plumbing attached: a metric
/// registry shared by cluster and server, and a flight recorder tracing
/// every request (period 1).
struct AdminHarness {
  explicit AdminHarness(NetBackend backend, bool rejecting)
      : graph(MakeGraph()),
        registry(Cluster::MakeRegistry(Slo{kSecond, 2 * kSecond, 0})) {
    stats::FlightRecorder::Options trace_options;
    trace_options.sampling_period = 1;
    recorder.Configure(trace_options);
    recorder.SetEnabled(true);

    Cluster::Options cluster_options;
    cluster_options.num_brokers = 1;
    cluster_options.broker_workers = 2;
    cluster_options.num_shards = 2;
    cluster_options.shard_workers = 1;
    cluster_options.work_per_edge = 4;
    if (rejecting) {
      // One-deep queue door: guaranteed policy rejections under load.
      cluster_options.broker_policy.kind = PolicyKind::kMaxQueueLength;
      cluster_options.broker_policy.max_queue_length.length_limit = 1;
    } else {
      cluster_options.broker_policy.kind = PolicyKind::kBouncer;
    }
    cluster_options.shard_policy.kind = PolicyKind::kAlwaysAccept;
    cluster_options.metrics = &metrics;
    cluster_options.recorder = &recorder;
    cluster = std::make_unique<Cluster>(&graph, &registry,
                                        SystemClock::Global(),
                                        cluster_options);
    EXPECT_TRUE(cluster->Start().ok());

    NetServer::Options server_options;
    server_options.backend = backend;
    server_options.batch_submit = true;
    server_options.metrics = &metrics;
    server_options.recorder = &recorder;
    server = std::make_unique<NetServer>(cluster.get(), server_options);
    EXPECT_TRUE(server->Start().ok());
    EXPECT_EQ(server->backend(), backend);
  }

  ~AdminHarness() {
    server->Stop();
    cluster->Stop();
  }

  std::unique_ptr<NetClient> MakeLoadClient(size_t conns, size_t in_flight) {
    NetClient::Options options;
    options.port = server->port();
    options.num_connections = conns;
    options.num_io_threads = 2;
    options.in_flight_per_conn = in_flight;
    auto client = std::make_unique<NetClient>(
        options, [](size_t conn_index, uint64_t seq) {
          RequestFrame frame;
          frame.op = static_cast<uint8_t>(GraphOp::kDegree);
          frame.source = static_cast<uint32_t>((conn_index * 7919 + seq) %
                                               2'000);
          return frame;
        });
    EXPECT_TRUE(client->Start().ok());
    return client;
  }

  std::string Fetch(uint8_t op) {
    AdminFetch fetch;
    fetch.port = server->port();
    fetch.op = op;
    std::string payload;
    EXPECT_TRUE(FetchAdmin(fetch, &payload).ok());
    return payload;
  }

  GraphStore graph;
  QueryTypeRegistry registry;
  stats::FlightRecorder recorder;
  stats::MetricRegistry metrics;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<NetServer> server;
};

/// Extracts the u64 immediately following `key` in `text`, or 0.
uint64_t NumberAfter(const std::string& text, const std::string& key) {
  const size_t pos = text.find(key);
  if (pos == std::string::npos) return 0;
  return std::strtoull(text.c_str() + pos + key.size(), nullptr, 10);
}

class NetAdminTest : public ::testing::TestWithParam<NetBackend> {};

INSTANTIATE_TEST_SUITE_P(Backends, NetAdminTest,
                         ::testing::Values(NetBackend::kEpoll,
                                           NetBackend::kUring),
                         BackendParamName);

TEST_P(NetAdminTest, SnapshotsRoundTripUnderLoad) {
  BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(GetParam());
  AdminHarness harness(GetParam(), /*rejecting=*/false);
  auto client = harness.MakeLoadClient(8, 16);
  client->StartClosedLoop();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // All three admin opcodes answer while the data path is saturated.
  const std::string json = harness.Fetch(kOpStatsJson);
  const std::string prom = harness.Fetch(kOpStatsPrometheus);
  const std::string trace = harness.Fetch(kOpTraceDump);

  client->StopSending();
  client->WaitForDrain(2 * kSecond);
  client->Stop();

  // JSON snapshot: live net counters and the broker's estimate-vs-actual
  // queue-wait error histogram, populated under load.
  EXPECT_GT(NumberAfter(json, "\"net.requests\":"), 0u);
  EXPECT_GT(NumberAfter(json, "\"net.responses\":"), 0u);
  EXPECT_GT(NumberAfter(json, "\"stage.broker-0.completed\":"), 0u);
  const uint64_t err_count =
      NumberAfter(json, "\"stage.broker-0.est_wait_err_under_ns\":{\"count\":") +
      NumberAfter(json, "\"stage.broker-0.est_wait_err_over_ns\":{\"count\":");
  EXPECT_GT(err_count, 0u);
  // The admin request that produced this snapshot counted itself.
  EXPECT_GT(NumberAfter(json, "\"net.admin_requests\":"), 0u);
  // The backend gauge names the event loop that served this fetch.
  ASSERT_NE(json.find("\"net.backend_io_uring\":"), std::string::npos);
  EXPECT_EQ(NumberAfter(json, "\"net.backend_io_uring\":"),
            GetParam() == NetBackend::kUring ? 1u : 0u);

  // Prometheus exposition of the same counters.
  EXPECT_NE(prom.find("# TYPE bouncer_net_requests counter"),
            std::string::npos);
  EXPECT_GT(NumberAfter(prom, "\nbouncer_net_requests "), 0u);
  EXPECT_NE(prom.find("bouncer_stage_broker_0_est_wait_err"),
            std::string::npos);

  // Trace dump: full per-request lifecycle chains landed in the rings.
  EXPECT_NE(trace.find("\"kind\":\"net_parse\""), std::string::npos);
  EXPECT_NE(trace.find("\"kind\":\"admission\""), std::string::npos);
  EXPECT_NE(trace.find("\"kind\":\"response_write\""), std::string::npos);
}

TEST_P(NetAdminTest, AdminOnQuiescentServerAndUnknownKindsRefused) {
  BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(GetParam());
  AdminHarness harness(GetParam(), /*rejecting=*/false);
  const std::string json = harness.Fetch(kOpStatsJson);
  EXPECT_EQ(json.rfind("{\"counters\":{", 0), 0u);  // Valid JSON shape.
  AdminFetch fetch;
  fetch.port = harness.server->port();
  fetch.op = 0x42;  // A graph opcode is not an admin opcode.
  std::string payload;
  EXPECT_FALSE(FetchAdmin(fetch, &payload).ok());
}

TEST_P(NetAdminTest, RejectionReasonsReachTheClient) {
  BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(GetParam());
  AdminHarness harness(GetParam(), /*rejecting=*/true);
  auto client = harness.MakeLoadClient(4, 8);
  client->StartClosedLoop();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  client->StopSending();
  client->WaitForDrain(2 * kSecond);
  const NetClient::Counters counters = client->counters();
  client->Stop();

  // The one-deep queue forces early policy rejections; their reason code
  // rides the response flags byte into the per-reason client counters.
  EXPECT_GT(counters.rejected, 0u);
  EXPECT_EQ(counters.reason_policy, counters.rejected);
  EXPECT_EQ(counters.reason_queue, counters.shedded);
  EXPECT_EQ(counters.reason_expired, counters.expired);

  // The server distinguished the same reasons per loop.
  const NetServer::Stats stats = harness.server->AggregateStats();
  EXPECT_EQ(stats.rejections_policy, counters.rejected);
  EXPECT_EQ(stats.rejections_queue, counters.shedded);
  EXPECT_EQ(stats.rejections, stats.rejections_policy + stats.rejections_queue);
}

}  // namespace
}  // namespace bouncer::net
