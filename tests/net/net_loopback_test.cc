// End-to-end loopback tests: NetServer fronting a real Cluster, driven
// by NetClient over 127.0.0.1. This is also the CI smoke test for the
// network front-end (ctest runs it on every push): ~1k queries per mode,
// every one answered, degree answers checked against the graph, and
// rejection status codes verified against a rejecting admission policy.
// The whole suite runs once per event-loop backend (epoll / io_uring;
// io_uring cases skip with the probe's reason where unsupported), plus a
// mixed-backend interop case with both server backends sharing one
// cluster. The "NetLoopback" suite name keeps it inside the TSan job's
// regex.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/tenant_registry.h"
#include "src/graph/cluster.h"
#include "src/graph/graph_generator.h"
#include "src/net/net_client.h"
#include "src/net/net_server.h"
#include "src/stats/metric_registry.h"
#include "src/util/rng.h"
#include "tests/net/backend_test_util.h"

namespace bouncer::net {
namespace {

using graph::Cluster;
using graph::GraphOp;
using graph::GraphStore;

GraphStore MakeGraph() {
  graph::GeneratorOptions options;
  options.num_vertices = 2'000;
  options.edges_per_vertex = 6;
  return graph::GeneratePreferentialAttachment(options);
}

Cluster::Options SmallCluster(bool rejecting) {
  Cluster::Options options;
  options.num_brokers = 1;
  options.broker_workers = 2;
  options.num_shards = 2;
  options.shard_workers = 1;
  options.work_per_edge = 4;
  if (rejecting) {
    // A one-deep queue door: every query that arrives while another is
    // queued gets a synchronous early rejection.
    options.broker_policy.kind = PolicyKind::kMaxQueueLength;
    options.broker_policy.max_queue_length.length_limit = 1;
  } else {
    options.broker_policy.kind = PolicyKind::kAlwaysAccept;
  }
  options.shard_policy.kind = PolicyKind::kAlwaysAccept;
  return options;
}

struct LoopbackHarness {
  explicit LoopbackHarness(NetBackend backend, bool batch_submit,
                           bool rejecting = false)
      : graph(MakeGraph()),
        registry(Cluster::MakeRegistry(Slo{kSecond, 2 * kSecond, 0})),
        cluster(&graph, &registry, SystemClock::Global(),
                SmallCluster(rejecting)) {
    EXPECT_TRUE(cluster.Start().ok());
    NetServer::Options server_options;
    server_options.backend = backend;
    server_options.batch_submit = batch_submit;
    // Every loopback test runs with the tenant dimension wired in: v1
    // traffic lands on the default tenant, so the single-tenant cases
    // double as wire-compat coverage.
    server_options.tenants = &tenants;
    server_options.metrics = &metrics;
    server = std::make_unique<NetServer>(&cluster, server_options);
    EXPECT_TRUE(server->Start().ok());
    EXPECT_EQ(server->backend(), backend);
  }

  ~LoopbackHarness() {
    server->Stop();
    cluster.Stop();
  }

  GraphStore graph;
  QueryTypeRegistry registry;
  Cluster cluster;
  TenantRegistry tenants;
  stats::MetricRegistry metrics;
  std::unique_ptr<NetServer> server;
};

NetClient::Options ClientOptions(uint16_t port, size_t conns,
                                 size_t in_flight) {
  NetClient::Options options;
  options.port = port;
  options.num_connections = conns;
  options.num_io_threads = 2;
  options.in_flight_per_conn = in_flight;
  return options;
}

/// Runs 1k degree queries closed-loop against `harness` and checks every
/// kOk answer against the graph's actual degree.
void RunDegreeCheck(LoopbackHarness& harness) {
  constexpr uint64_t kQueries = 1000;
  const uint32_t num_vertices = harness.graph.num_vertices();
  NetClient client(
      ClientOptions(harness.server->port(), /*conns=*/4, /*in_flight=*/8),
      [num_vertices](size_t conn_index, uint64_t seq) {
        RequestFrame frame;
        frame.op = static_cast<uint8_t>(GraphOp::kDegree);
        // Deterministic per-connection vertex choice, recoverable from
        // the echoed id for the answer check.
        frame.source =
            static_cast<uint32_t>((conn_index * 7919 + seq * 104'729) %
                                  num_vertices);
        return frame;
      });
  ASSERT_TRUE(client.Start().ok());
  client.StartClosedLoop();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (client.counters().queued < kQueries &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  client.StopSending();
  ASSERT_TRUE(client.WaitForDrain(10 * kSecond));
  client.Stop();

  const auto counters = client.counters();
  EXPECT_EQ(counters.conn_errors, 0u);
  EXPECT_GE(counters.queued, kQueries);
  EXPECT_EQ(counters.responses, counters.queued) << "every request answered";
  EXPECT_EQ(counters.ok, counters.responses) << "AlwaysAccept serves all";
  EXPECT_EQ(counters.failed, 0u);

  const NetServer::Stats stats = harness.server->AggregateStats();
  EXPECT_GE(stats.requests, kQueries);
  EXPECT_EQ(stats.responses, stats.requests);
  EXPECT_EQ(stats.bad_frames, 0u);
}

class NetLoopbackTest : public ::testing::TestWithParam<NetBackend> {};

INSTANTIATE_TEST_SUITE_P(Backends, NetLoopbackTest,
                         ::testing::Values(NetBackend::kEpoll,
                                           NetBackend::kUring),
                         BackendParamName);

TEST_P(NetLoopbackTest, BatchedModeAnswersEveryQuery) {
  BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(GetParam());
  LoopbackHarness harness(GetParam(), /*batch_submit=*/true);
  RunDegreeCheck(harness);
  // Batch mode must actually batch: fewer admission episodes than
  // requests (each episode covers a whole wakeup's parse).
  const NetServer::Stats stats = harness.server->AggregateStats();
  EXPECT_GT(stats.submit_batches, 0u);
  EXPECT_LE(stats.submit_batches, stats.requests);
}

TEST_P(NetLoopbackTest, PerItemModeAnswersEveryQuery) {
  BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(GetParam());
  LoopbackHarness harness(GetParam(), /*batch_submit=*/false);
  RunDegreeCheck(harness);
}

TEST_P(NetLoopbackTest, DegreeAnswersMatchGraph) {
  BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(GetParam());
  // A raw blocking socket, one request at a time: every kOk value must
  // equal the graph's actual degree of the queried vertex, and the id
  // must echo back verbatim.
  LoopbackHarness harness(GetParam(), /*batch_submit=*/true);
  const uint32_t num_vertices = harness.graph.num_vertices();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(harness.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  for (uint64_t seq = 0; seq < 200; ++seq) {
    RequestFrame request;
    request.id = 0xbeef0000 + seq;
    request.op = static_cast<uint8_t>(GraphOp::kDegree);
    const uint32_t vertex =
        static_cast<uint32_t>((seq * 104'729) % num_vertices);
    request.source = vertex;
    uint8_t out[kRequestFrameBytes];
    const size_t out_bytes = EncodeRequest(request, out);
    ASSERT_EQ(::send(fd, out, out_bytes, 0),
              static_cast<ssize_t>(out_bytes));

    uint8_t in[kResponseFrameBytes];
    size_t got = 0;
    while (got < sizeof(in)) {
      const ssize_t n = ::recv(fd, in + got, sizeof(in) - got, 0);
      ASSERT_GT(n, 0) << "connection died mid-response";
      got += static_cast<size_t>(n);
    }
    ASSERT_EQ(wire::GetU32(in), kResponseBodyBytes);
    ResponseFrame response;
    DecodeResponseBody(in + kLengthPrefixBytes, &response);
    EXPECT_EQ(response.id, request.id);
    ASSERT_EQ(response.status, ResponseStatus::kOk);
    EXPECT_EQ(response.value, harness.graph.Degree(vertex))
        << "wrong degree for vertex " << vertex;
  }
  ::close(fd);
}

TEST_P(NetLoopbackTest, TenantIdsThreadEndToEnd) {
  BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(GetParam());
  // v2 frames carry external tenant ids; the server interns them and
  // charges per-tenant counters. A v1 (36-byte) frame from an old client
  // lands on the default tenant. One blocking socket keeps it exact.
  LoopbackHarness harness(GetParam(), /*batch_submit=*/true);
  const uint32_t num_vertices = harness.graph.num_vertices();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(harness.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // (external tenant id, request count): tenant 0 = legacy v1 frames.
  const std::pair<uint64_t, int> kMix[] = {{7, 5}, {9, 3}, {0, 2}};
  uint64_t seq = 0;
  for (const auto& [tenant, count] : kMix) {
    for (int i = 0; i < count; ++i, ++seq) {
      RequestFrame request;
      request.id = 0xfeed0000 + seq;
      request.op = static_cast<uint8_t>(GraphOp::kDegree);
      request.source = static_cast<uint32_t>((seq * 104'729) % num_vertices);
      request.tenant = tenant;
      uint8_t out[kRequestFrameBytes];
      const size_t out_bytes = EncodeRequest(request, out);
      ASSERT_EQ(out_bytes, tenant == 0
                               ? kLengthPrefixBytes + kRequestBodyBytesV1
                               : kRequestFrameBytes);
      ASSERT_EQ(::send(fd, out, out_bytes, 0),
                static_cast<ssize_t>(out_bytes));
      uint8_t in[kResponseFrameBytes];
      size_t got = 0;
      while (got < sizeof(in)) {
        const ssize_t n = ::recv(fd, in + got, sizeof(in) - got, 0);
        ASSERT_GT(n, 0) << "connection died mid-response";
        got += static_cast<size_t>(n);
      }
      ResponseFrame response;
      DecodeResponseBody(in + kLengthPrefixBytes, &response);
      EXPECT_EQ(response.id, request.id);
      EXPECT_EQ(response.status, ResponseStatus::kOk);
    }
  }
  ::close(fd);

  // Per-tenant accounting: exact request/ok splits by dense index.
  for (const auto& [tenant, count] : kMix) {
    TenantId dense = kDefaultTenant;
    if (tenant != 0) {
      const StatusOr<TenantId> found = harness.tenants.Find(tenant);
      ASSERT_TRUE(found.ok()) << "tenant " << tenant << " never interned";
      dense = *found;
      EXPECT_NE(dense, kDefaultTenant);
    }
    const NetServer::TenantStats stats = harness.server->TenantStatsOf(dense);
    EXPECT_EQ(stats.requests, static_cast<uint64_t>(count))
        << "tenant " << tenant;
    EXPECT_EQ(stats.ok, static_cast<uint64_t>(count)) << "tenant " << tenant;
    EXPECT_EQ(stats.rejected, 0u);
  }

  // The admin metric surface renders per-tenant rows keyed by wire id.
  const std::string json = harness.metrics.ToJson();
  EXPECT_NE(json.find("\"tenant.7.requests\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tenant.9.ok\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tenant.0.requests\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tenant.count\":3"), std::string::npos) << json;
}

TEST_P(NetLoopbackTest, RejectionCodesReachTheClient) {
  BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(GetParam());
  // Zero-length broker queue: with 8 connections x 8 in flight, most
  // queries must come back kRejected — synchronously, from the event
  // loop — while some still complete.
  LoopbackHarness harness(GetParam(), /*batch_submit=*/true,
                          /*rejecting=*/true);
  NetClient client(
      ClientOptions(harness.server->port(), /*conns=*/8, /*in_flight=*/8),
      [](size_t conn_index, uint64_t seq) {
        RequestFrame frame;
        frame.op = static_cast<uint8_t>(GraphOp::kDegree);
        frame.source = static_cast<uint32_t>((conn_index + seq) % 2000);
        return frame;
      });
  ASSERT_TRUE(client.Start().ok());
  client.StartClosedLoop();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (client.counters().queued < 2000 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  client.StopSending();
  ASSERT_TRUE(client.WaitForDrain(10 * kSecond));
  client.Stop();

  const auto counters = client.counters();
  EXPECT_EQ(counters.responses, counters.queued);
  EXPECT_GT(counters.rejected + counters.shedded, 0u)
      << "rejecting policy produced no rejections";
  EXPECT_GT(counters.ok, 0u) << "nothing completed at all";
  EXPECT_EQ(counters.ok + counters.rejected + counters.shedded +
                counters.expired + counters.failed,
            counters.responses);
  EXPECT_EQ(harness.server->AggregateStats().rejections,
            counters.rejected + counters.shedded);
}

TEST_P(NetLoopbackTest, ManyShortLivedConnections) {
  BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(GetParam());
  // Slot recycling: connections come and go; the server must keep
  // serving and release every slot (accepted == closed at the end).
  LoopbackHarness harness(GetParam(), /*batch_submit=*/true);
  for (int round = 0; round < 5; ++round) {
    NetClient client(
        ClientOptions(harness.server->port(), /*conns=*/4, /*in_flight=*/4),
        [](size_t, uint64_t seq) {
          RequestFrame frame;
          frame.op = static_cast<uint8_t>(GraphOp::kDegree);
          frame.source = static_cast<uint32_t>(seq % 2000);
          return frame;
        });
    ASSERT_TRUE(client.Start().ok());
    client.StartClosedLoop();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (client.counters().queued < 100 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    client.StopSending();
    ASSERT_TRUE(client.WaitForDrain(10 * kSecond));
    client.Stop();
    EXPECT_EQ(client.counters().conn_errors, 0u);
  }
  // Give the server a beat to observe the FIN of the last round.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  NetServer::Stats stats = harness.server->AggregateStats();
  while (stats.connections_closed < stats.connections_accepted &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = harness.server->AggregateStats();
  }
  EXPECT_EQ(stats.connections_accepted, 20u);
  EXPECT_EQ(stats.connections_closed, 20u);
}

TEST_P(NetLoopbackTest, NodelaySetAndVerifiedOnAcceptedSockets) {
  BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(GetParam());
  // The server sets TCP_NODELAY on every accepted socket and reads it
  // back with getsockopt at accept time; a failed verification bumps
  // nodelay_failures. Small length-prefixed frames must never sit in a
  // Nagle buffer waiting for an ACK.
  LoopbackHarness harness(GetParam(), /*batch_submit=*/true);
  NetClient client(
      ClientOptions(harness.server->port(), /*conns=*/4, /*in_flight=*/2),
      [](size_t, uint64_t seq) {
        RequestFrame frame;
        frame.op = static_cast<uint8_t>(GraphOp::kDegree);
        frame.source = static_cast<uint32_t>(seq % 2000);
        return frame;
      });
  ASSERT_TRUE(client.Start().ok());
  client.StartClosedLoop();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (client.counters().responses < 50 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  client.StopSending();
  ASSERT_TRUE(client.WaitForDrain(10 * kSecond));
  client.Stop();

  const NetServer::Stats stats = harness.server->AggregateStats();
  EXPECT_GE(stats.connections_accepted, 4u);
  EXPECT_EQ(stats.nodelay_failures, 0u)
      << "an accepted socket is running without TCP_NODELAY";
}

TEST(NetLoopbackInteropTest, MixedBackendServersShareOneCluster) {
  // Interop: an epoll server and an io_uring server front the same
  // Cluster on different ports, each driven by its own client
  // concurrently. Worker completions for both route through the same
  // done rings; every request on both paths must be answered and the
  // two servers' stats must stay independent.
  std::string reason;
  if (!NetServer::UringSupported(&reason)) {
    GTEST_SKIP() << "io_uring backend unavailable: " << reason;
  }
  LoopbackHarness harness(NetBackend::kEpoll, /*batch_submit=*/true);
  NetServer::Options uring_options;
  uring_options.backend = NetBackend::kUring;
  uring_options.batch_submit = true;
  NetServer uring_server(&harness.cluster, uring_options);
  ASSERT_TRUE(uring_server.Start().ok());
  ASSERT_EQ(uring_server.backend(), NetBackend::kUring);

  const uint32_t num_vertices = harness.graph.num_vertices();
  const auto sampler = [num_vertices](size_t conn_index, uint64_t seq) {
    RequestFrame frame;
    frame.op = static_cast<uint8_t>(GraphOp::kDegree);
    frame.source = static_cast<uint32_t>(
        (conn_index * 7919 + seq * 104'729) % num_vertices);
    return frame;
  };
  NetClient epoll_client(
      ClientOptions(harness.server->port(), /*conns=*/4, /*in_flight=*/4),
      sampler);
  NetClient uring_client(
      ClientOptions(uring_server.port(), /*conns=*/4, /*in_flight=*/4),
      sampler);
  ASSERT_TRUE(epoll_client.Start().ok());
  ASSERT_TRUE(uring_client.Start().ok());
  epoll_client.StartClosedLoop();
  uring_client.StartClosedLoop();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while ((epoll_client.counters().queued < 500 ||
          uring_client.counters().queued < 500) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  epoll_client.StopSending();
  uring_client.StopSending();
  ASSERT_TRUE(epoll_client.WaitForDrain(10 * kSecond));
  ASSERT_TRUE(uring_client.WaitForDrain(10 * kSecond));
  epoll_client.Stop();
  uring_client.Stop();

  for (const NetClient* client : {&epoll_client, &uring_client}) {
    const auto counters = client->counters();
    EXPECT_EQ(counters.conn_errors, 0u);
    EXPECT_GE(counters.queued, 500u);
    EXPECT_EQ(counters.responses, counters.queued);
    EXPECT_EQ(counters.ok, counters.responses);
  }
  const NetServer::Stats epoll_stats = harness.server->AggregateStats();
  const NetServer::Stats uring_stats = uring_server.AggregateStats();
  EXPECT_EQ(epoll_stats.backend, NetBackend::kEpoll);
  EXPECT_EQ(uring_stats.backend, NetBackend::kUring);
  EXPECT_EQ(epoll_stats.requests, epoll_client.counters().queued);
  EXPECT_EQ(uring_stats.requests, uring_client.counters().queued);
  uring_server.Stop();
}

}  // namespace
}  // namespace bouncer::net
