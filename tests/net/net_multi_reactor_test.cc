// Multi-reactor correctness: NetServer sharded across N event loops
// fronting one Cluster, driven over 127.0.0.1. Covers loop counts
// {1, 2, 4} end-to-end (answers checked against the graph, rejections
// delivered, per-loop stats summing to the aggregate, non-degenerate
// connection distribution), the accept-and-hand-off fallback that
// replaces SO_REUSEPORT, clean Stop with work still in flight, and a
// concurrent multi-client stress the TSan job runs (the
// "NetMultiReactor" suite name keeps it inside the CI regex). The whole
// suite runs once per event-loop backend; io_uring cases skip with the
// probe's reason where the kernel lacks support.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/graph/cluster.h"
#include "src/graph/graph_generator.h"
#include "src/net/net_client.h"
#include "src/net/net_server.h"
#include "tests/net/backend_test_util.h"

namespace bouncer::net {
namespace {

using graph::Cluster;
using graph::GraphOp;
using graph::GraphStore;

GraphStore MakeGraph() {
  graph::GeneratorOptions options;
  options.num_vertices = 2'000;
  options.edges_per_vertex = 6;
  return graph::GeneratePreferentialAttachment(options);
}

Cluster::Options SmallCluster(bool rejecting) {
  Cluster::Options options;
  options.num_brokers = 1;
  options.broker_workers = 2;
  options.num_shards = 2;
  options.shard_workers = 1;
  options.work_per_edge = 4;
  if (rejecting) {
    options.broker_policy.kind = PolicyKind::kMaxQueueLength;
    options.broker_policy.max_queue_length.length_limit = 1;
  } else {
    options.broker_policy.kind = PolicyKind::kAlwaysAccept;
  }
  options.shard_policy.kind = PolicyKind::kAlwaysAccept;
  return options;
}

struct ReactorHarness {
  explicit ReactorHarness(NetBackend backend, size_t num_loops,
                          bool force_handoff = false, bool rejecting = false)
      : graph(MakeGraph()),
        registry(Cluster::MakeRegistry(Slo{kSecond, 2 * kSecond, 0})),
        cluster(&graph, &registry, SystemClock::Global(),
                SmallCluster(rejecting)) {
    EXPECT_TRUE(cluster.Start().ok());
    NetServer::Options server_options;
    server_options.backend = backend;
    server_options.num_loops = num_loops;
    server_options.force_fd_handoff = force_handoff;
    server = std::make_unique<NetServer>(&cluster, server_options);
    EXPECT_TRUE(server->Start().ok());
    EXPECT_EQ(server->backend(), backend);
  }

  ~ReactorHarness() {
    server->Stop();
    cluster.Stop();
  }

  GraphStore graph;
  QueryTypeRegistry registry;
  Cluster cluster;
  std::unique_ptr<NetServer> server;
};

NetClient::Options ClientOptions(uint16_t port, size_t conns,
                                 size_t in_flight) {
  NetClient::Options options;
  options.port = port;
  options.num_connections = conns;
  options.num_io_threads = 2;
  options.in_flight_per_conn = in_flight;
  return options;
}

/// Closed-loop degree queries until >= `min_queries` are queued, then a
/// full drain; every kOk answer is checked against the graph via the
/// per-connection deterministic vertex choice.
NetClient::Counters DriveDegreeLoad(ReactorHarness& harness, size_t conns,
                                    size_t in_flight, uint64_t min_queries) {
  const uint32_t num_vertices = harness.graph.num_vertices();
  NetClient client(
      ClientOptions(harness.server->port(), conns, in_flight),
      [num_vertices](size_t conn_index, uint64_t seq) {
        RequestFrame frame;
        frame.op = static_cast<uint8_t>(GraphOp::kDegree);
        frame.source =
            static_cast<uint32_t>((conn_index * 7919 + seq * 104'729) %
                                  num_vertices);
        return frame;
      });
  EXPECT_TRUE(client.Start().ok());
  client.StartClosedLoop();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (client.counters().queued < min_queries &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  client.StopSending();
  EXPECT_TRUE(client.WaitForDrain(10 * kSecond));
  client.Stop();
  return client.counters();
}

class NetMultiReactorTest : public ::testing::TestWithParam<NetBackend> {};

INSTANTIATE_TEST_SUITE_P(Backends, NetMultiReactorTest,
                         ::testing::Values(NetBackend::kEpoll,
                                           NetBackend::kUring),
                         BackendParamName);

TEST_P(NetMultiReactorTest, AnswersEveryQueryAtEachLoopCount) {
  BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(GetParam());
  for (const size_t loops : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE(loops);
    ReactorHarness harness(GetParam(), loops);
    ASSERT_EQ(harness.server->num_loops(), loops);
    const auto counters = DriveDegreeLoad(harness, /*conns=*/16,
                                          /*in_flight=*/4, /*min=*/1200);
    EXPECT_EQ(counters.conn_errors, 0u);
    EXPECT_GE(counters.queued, 1200u);
    EXPECT_EQ(counters.responses, counters.queued);
    EXPECT_EQ(counters.ok, counters.responses);

    // Per-loop counters must sum exactly to the aggregate, and with
    // multiple loops the connection distribution must be non-degenerate
    // (SO_REUSEPORT hashes 16 connections across the listeners; all on
    // one loop is a ~4^-15 event — and round-robin in fallback mode).
    const NetServer::Stats total = harness.server->AggregateStats();
    EXPECT_EQ(total.requests, total.responses);
    EXPECT_EQ(total.bad_frames, 0u);
    EXPECT_EQ(total.nodelay_failures, 0u);
    uint64_t sum_requests = 0, sum_accepted = 0;
    size_t loops_with_conns = 0;
    for (size_t i = 0; i < harness.server->num_loops(); ++i) {
      const NetServer::Stats s = harness.server->LoopStats(i);
      sum_requests += s.requests;
      sum_accepted += s.connections_accepted;
      if (s.connections_accepted > 0) ++loops_with_conns;
    }
    EXPECT_EQ(sum_requests, total.requests);
    EXPECT_EQ(sum_accepted, total.connections_accepted);
    if (loops > 1) {
      EXPECT_GE(loops_with_conns, 2u)
          << "every connection landed on a single loop";
    }
  }
}

TEST_P(NetMultiReactorTest, FdHandoffFallbackDistributesRoundRobin) {
  BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(GetParam());
  // Forced fallback: loop 0 owns the only listener and mails accepted
  // fds round-robin, so 8 connections over 4 loops land exactly 2 per
  // loop, and the answers flow back through the owning loops.
  ReactorHarness harness(GetParam(), /*num_loops=*/4,
                         /*force_handoff=*/true);
  ASSERT_TRUE(harness.server->handoff_mode());
  const auto counters = DriveDegreeLoad(harness, /*conns=*/8,
                                        /*in_flight=*/4, /*min=*/800);
  EXPECT_EQ(counters.conn_errors, 0u);
  EXPECT_EQ(counters.responses, counters.queued);
  EXPECT_EQ(counters.ok, counters.responses);

  for (size_t i = 0; i < harness.server->num_loops(); ++i) {
    EXPECT_EQ(harness.server->LoopStats(i).connections_accepted, 2u)
        << "round-robin handoff skewed on loop " << i;
  }
  // 6 of the 8 accepts were mailed to loops 1..3 (loop 0 keeps its own).
  EXPECT_EQ(harness.server->AggregateStats().handoffs, 6u);
}

TEST_P(NetMultiReactorTest, RejectionsDeliveredAcrossLoops) {
  BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(GetParam());
  // One-deep broker queue: most queries come back kRejected,
  // synchronously from whichever loop submitted them; counts must
  // reconcile across client, aggregate, and per-loop views.
  ReactorHarness harness(GetParam(), /*num_loops=*/2,
                         /*force_handoff=*/false,
                         /*rejecting=*/true);
  const uint32_t num_vertices = harness.graph.num_vertices();
  NetClient client(
      ClientOptions(harness.server->port(), /*conns=*/8, /*in_flight=*/8),
      [num_vertices](size_t conn_index, uint64_t seq) {
        RequestFrame frame;
        frame.op = static_cast<uint8_t>(GraphOp::kDegree);
        frame.source =
            static_cast<uint32_t>((conn_index + seq) % num_vertices);
        return frame;
      });
  ASSERT_TRUE(client.Start().ok());
  client.StartClosedLoop();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (client.counters().queued < 2000 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  client.StopSending();
  ASSERT_TRUE(client.WaitForDrain(10 * kSecond));
  client.Stop();

  const auto counters = client.counters();
  EXPECT_EQ(counters.responses, counters.queued);
  EXPECT_GT(counters.rejected + counters.shedded, 0u);
  EXPECT_GT(counters.ok, 0u);
  const NetServer::Stats total = harness.server->AggregateStats();
  EXPECT_EQ(total.rejections, counters.rejected + counters.shedded);
  uint64_t per_loop_rejections = 0;
  for (size_t i = 0; i < harness.server->num_loops(); ++i) {
    per_loop_rejections += harness.server->LoopStats(i).rejections;
  }
  EXPECT_EQ(per_loop_rejections, total.rejections);
}

TEST_P(NetMultiReactorTest, CleanStopWithInflightWork) {
  BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(GetParam());
  // Stop all four loops while admitted queries are still executing on
  // cluster workers, then stop the cluster (the required order). The
  // workers' completions route to rings whose loops are gone — they must
  // be dropped, not deadlock the shutdown; slow expensive queries keep
  // plenty in flight at the moment of the Stop.
  ReactorHarness harness(GetParam(), /*num_loops=*/4);
  const uint32_t num_vertices = harness.graph.num_vertices();
  NetClient client(
      ClientOptions(harness.server->port(), /*conns=*/8, /*in_flight=*/16),
      [num_vertices](size_t conn_index, uint64_t seq) {
        RequestFrame frame;
        frame.op = static_cast<uint8_t>(GraphOp::kDistance4);
        frame.source = static_cast<uint32_t>((conn_index * 131) %
                                             num_vertices);
        frame.target = static_cast<uint32_t>((seq * 137) % num_vertices);
        return frame;
      });
  ASSERT_TRUE(client.Start().ok());
  client.StartClosedLoop();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.server->AggregateStats().requests < 64 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(harness.server->AggregateStats().requests, 64u);

  client.StopSending();
  harness.server->Stop();  // In-flight work outlives the loops.
  harness.cluster.Stop();  // Must not hang on orphaned completions.
  client.Stop();
  SUCCEED();  // Reaching here without deadlock is the assertion.
}

TEST_P(NetMultiReactorTest, ConcurrentClientsAcrossLoopsStress) {
  BOUNCER_SKIP_UNLESS_BACKEND_AVAILABLE(GetParam());
  // TSan surface: three independent clients (each with its own IO
  // threads) hammer a 4-loop server concurrently, so accept paths,
  // parse/submit batches, worker completions, and per-loop counters all
  // race for real. Every client must get every answer.
  ReactorHarness harness(GetParam(), /*num_loops=*/4);
  const uint32_t num_vertices = harness.graph.num_vertices();
  constexpr size_t kClients = 3;
  std::vector<NetClient::Counters> results(kClients);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      NetClient client(
          ClientOptions(harness.server->port(), /*conns=*/4,
                        /*in_flight=*/4),
          [num_vertices, c](size_t conn_index, uint64_t seq) {
            RequestFrame frame;
            frame.op = static_cast<uint8_t>(
                seq % 8 == 0 ? GraphOp::kNeighbors : GraphOp::kDegree);
            frame.source = static_cast<uint32_t>(
                (c * 7919 + conn_index * 104'729 + seq) % num_vertices);
            return frame;
          });
      ASSERT_TRUE(client.Start().ok());
      client.StartClosedLoop();
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(20);
      while (client.counters().queued < 400 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      client.StopSending();
      EXPECT_TRUE(client.WaitForDrain(10 * kSecond));
      client.Stop();
      results[c] = client.counters();
    });
  }
  for (auto& thread : threads) thread.join();

  uint64_t total_queued = 0, total_responses = 0;
  for (const auto& counters : results) {
    EXPECT_EQ(counters.conn_errors, 0u);
    EXPECT_EQ(counters.responses, counters.queued);
    EXPECT_EQ(counters.failed, 0u);
    total_queued += counters.queued;
    total_responses += counters.responses;
  }
  EXPECT_GE(total_queued, kClients * 400u);
  const NetServer::Stats total = harness.server->AggregateStats();
  EXPECT_EQ(total.requests, total_queued);
  EXPECT_EQ(total.responses, total_responses);
  EXPECT_EQ(total.bad_frames, 0u);
}

}  // namespace
}  // namespace bouncer::net
