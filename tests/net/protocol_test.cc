#include "src/net/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace bouncer::net {
namespace {

TEST(NetProtocolTest, RequestRoundTrip) {
  RequestFrame in;
  in.id = 0x0123456789abcdefull;
  in.op = static_cast<uint8_t>(graph::GraphOp::kDistance3);
  in.priority = 7;
  in.flags = 0;
  in.source = 0xdeadbeef;
  in.target = 0xcafef00d;
  in.external_id = 0xfeedfacefeedfaceull;
  in.deadline_ns = 123 * kMillisecond;

  uint8_t buf[kRequestFrameBytes];
  EncodeRequest(in, buf);
  EXPECT_EQ(wire::GetU32(buf), kRequestBodyBytes);

  RequestFrame out;
  EXPECT_TRUE(DecodeRequestBody(buf + kLengthPrefixBytes, &out));
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.op, in.op);
  EXPECT_EQ(out.priority, in.priority);
  EXPECT_EQ(out.flags, in.flags);
  EXPECT_EQ(out.source, in.source);
  EXPECT_EQ(out.target, in.target);
  EXPECT_EQ(out.external_id, in.external_id);
  EXPECT_EQ(out.deadline_ns, in.deadline_ns);
}

TEST(NetProtocolTest, ResponseRoundTrip) {
  ResponseFrame in;
  in.id = 42;
  in.status = ResponseStatus::kRejected;
  in.flags = 0;
  in.value = 0x1122334455667788ull;

  uint8_t buf[kResponseFrameBytes];
  EncodeResponse(in, buf);
  EXPECT_EQ(wire::GetU32(buf), kResponseBodyBytes);

  ResponseFrame out;
  DecodeResponseBody(buf + kLengthPrefixBytes, &out);
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.flags, in.flags);
  EXPECT_EQ(out.value, in.value);
}

TEST(NetProtocolTest, WireIsLittleEndian) {
  // The format is defined as little-endian on the wire; pin the byte
  // layout so both ends stay compatible regardless of host.
  uint8_t buf[8];
  wire::PutU32(buf, 0x04030201u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
  EXPECT_EQ(buf[2], 0x03);
  EXPECT_EQ(buf[3], 0x04);
  wire::PutU64(buf, 0x0807060504030201ull);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(wire::GetU64(buf), 0x0807060504030201ull);
}

TEST(NetProtocolTest, DecodeRejectsUnknownOp) {
  RequestFrame in;
  in.id = 9;
  in.op = static_cast<uint8_t>(graph::kNumGraphOps);  // one past the last op
  uint8_t buf[kRequestFrameBytes];
  EncodeRequest(in, buf);
  RequestFrame out;
  EXPECT_FALSE(DecodeRequestBody(buf + kLengthPrefixBytes, &out));
  // Fields are still filled so the server can echo the id in kBadRequest.
  EXPECT_EQ(out.id, 9u);
}

TEST(NetProtocolTest, DecodeRejectsNonZeroFlags) {
  RequestFrame in;
  in.op = static_cast<uint8_t>(graph::GraphOp::kDegree);
  in.flags = 1;
  uint8_t buf[kRequestFrameBytes];
  EncodeRequest(in, buf);
  RequestFrame out;
  EXPECT_FALSE(DecodeRequestBody(buf + kLengthPrefixBytes, &out));
}

TEST(NetProtocolTest, AdminOpcodesAreDistinctFromGraphOps) {
  EXPECT_TRUE(IsAdminOp(kOpStatsJson));
  EXPECT_TRUE(IsAdminOp(kOpStatsPrometheus));
  EXPECT_TRUE(IsAdminOp(kOpTraceDump));
  EXPECT_FALSE(IsAdminOp(static_cast<uint8_t>(graph::GraphOp::kDegree)));
  EXPECT_FALSE(IsAdminOp(static_cast<uint8_t>(graph::kNumGraphOps) - 1));
  EXPECT_FALSE(IsAdminOp(kOpTraceDump + 1));
}

TEST(NetProtocolTest, AdminRequestRoundTrip) {
  RequestFrame in;
  in.id = 99;
  in.op = kOpStatsPrometheus;
  uint8_t buf[kRequestFrameBytes];
  EncodeRequest(in, buf);
  RequestFrame out;
  EXPECT_TRUE(DecodeRequestBody(buf + kLengthPrefixBytes, &out));
  EXPECT_EQ(out.op, kOpStatsPrometheus);
  EXPECT_EQ(out.id, 99u);
}

TEST(NetProtocolTest, ResponseFlagsCarryRejectReasonCodes) {
  // The response flags byte is the RejectReason wire code; its numeric
  // values are a stable protocol surface clients decode, so pin them.
  EXPECT_EQ(static_cast<uint8_t>(RejectReason::kNone), 0);
  EXPECT_EQ(static_cast<uint8_t>(RejectReason::kPolicy), 1);
  EXPECT_EQ(static_cast<uint8_t>(RejectReason::kQueueFull), 2);
  EXPECT_EQ(static_cast<uint8_t>(RejectReason::kExpired), 3);
  EXPECT_EQ(static_cast<uint8_t>(RejectReason::kShardPolicy), 4);
  EXPECT_EQ(static_cast<uint8_t>(RejectReason::kShardQueueFull), 5);
  EXPECT_EQ(static_cast<uint8_t>(RejectReason::kShardExpired), 6);

  ResponseFrame in;
  in.id = 7;
  in.status = ResponseStatus::kFailed;
  in.flags = static_cast<uint8_t>(RejectReason::kShardQueueFull);
  uint8_t buf[kResponseFrameBytes];
  EncodeResponse(in, buf);
  ResponseFrame out;
  DecodeResponseBody(buf + kLengthPrefixBytes, &out);
  EXPECT_EQ(static_cast<RejectReason>(out.flags),
            RejectReason::kShardQueueFull);
}

TEST(NetProtocolTest, ToGraphQueryMapsAllFields) {
  RequestFrame frame;
  frame.op = static_cast<uint8_t>(graph::GraphOp::kCommonNeighbors);
  frame.source = 11;
  frame.target = 22;
  frame.external_id = 33;
  const graph::GraphQuery q = ToGraphQuery(frame);
  EXPECT_EQ(q.op, graph::GraphOp::kCommonNeighbors);
  EXPECT_EQ(q.source, 11u);
  EXPECT_EQ(q.target, 22u);
  EXPECT_EQ(q.external_id, 33u);
}

}  // namespace
}  // namespace bouncer::net
