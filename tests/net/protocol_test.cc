#include "src/net/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace bouncer::net {
namespace {

TEST(NetProtocolTest, RequestRoundTrip) {
  RequestFrame in;
  in.id = 0x0123456789abcdefull;
  in.op = static_cast<uint8_t>(graph::GraphOp::kDistance3);
  in.priority = 7;
  in.flags = 0;
  in.source = 0xdeadbeef;
  in.target = 0xcafef00d;
  in.external_id = 0xfeedfacefeedfaceull;
  in.deadline_ns = 123 * kMillisecond;

  uint8_t buf[kRequestFrameBytes];
  // Default tenant: the frame stays a v1 body, byte-compatible with
  // pre-tenant servers.
  ASSERT_EQ(EncodeRequest(in, buf),
            kLengthPrefixBytes + kRequestBodyBytesV1);
  EXPECT_EQ(wire::GetU32(buf), kRequestBodyBytesV1);

  RequestFrame out;
  EXPECT_TRUE(DecodeRequestBody(buf + kLengthPrefixBytes,
                                kRequestBodyBytesV1, &out));
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.op, in.op);
  EXPECT_EQ(out.priority, in.priority);
  EXPECT_EQ(out.flags, in.flags);
  EXPECT_EQ(out.source, in.source);
  EXPECT_EQ(out.target, in.target);
  EXPECT_EQ(out.external_id, in.external_id);
  EXPECT_EQ(out.deadline_ns, in.deadline_ns);
  EXPECT_EQ(out.tenant, 0u);
}

TEST(NetProtocolTest, TenantRequestRoundTrip) {
  RequestFrame in;
  in.id = 77;
  in.op = static_cast<uint8_t>(graph::GraphOp::kNeighbors);
  in.source = 5;
  in.tenant = 0x00c0ffee12345678ull;

  uint8_t buf[kRequestFrameBytes];
  ASSERT_EQ(EncodeRequest(in, buf), kLengthPrefixBytes + kRequestBodyBytes);
  EXPECT_EQ(wire::GetU32(buf), kRequestBodyBytes);

  RequestFrame out;
  EXPECT_TRUE(
      DecodeRequestBody(buf + kLengthPrefixBytes, kRequestBodyBytes, &out));
  EXPECT_EQ(out.tenant, in.tenant);
  EXPECT_EQ(out.flags & kRequestFlagTenant, kRequestFlagTenant);
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.source, in.source);
}

TEST(NetProtocolTest, V1BodyFromOldClientDecodesAsDefaultTenant) {
  // A hand-built 36-byte v1 body (what a pre-tenant client emits) must
  // keep decoding, with the tenant defaulting to 0.
  uint8_t body[kRequestBodyBytesV1] = {};
  wire::PutU64(body, 1234);
  body[8] = static_cast<uint8_t>(graph::GraphOp::kDegree);
  wire::PutU16(body + 10, 0);
  wire::PutU32(body + 12, 42);
  RequestFrame out;
  EXPECT_TRUE(DecodeRequestBody(body, kRequestBodyBytesV1, &out));
  EXPECT_EQ(out.id, 1234u);
  EXPECT_EQ(out.tenant, 0u);
}

TEST(NetProtocolTest, DecodeRejectsTenantFlagLengthMismatch) {
  // Tenant flag set but only a v1-length body: invalid, and the tenant
  // must not be read from bytes that do not exist.
  uint8_t body[kRequestBodyBytes] = {};
  body[8] = static_cast<uint8_t>(graph::GraphOp::kDegree);
  wire::PutU16(body + 10, kRequestFlagTenant);
  RequestFrame out;
  EXPECT_FALSE(DecodeRequestBody(body, kRequestBodyBytesV1, &out));
  EXPECT_EQ(out.tenant, 0u);
  // And the inverse: a 44-byte body without the flag is also malformed.
  wire::PutU16(body + 10, 0);
  EXPECT_FALSE(DecodeRequestBody(body, kRequestBodyBytes, &out));
}

TEST(NetProtocolTest, ResponseRoundTrip) {
  ResponseFrame in;
  in.id = 42;
  in.status = ResponseStatus::kRejected;
  in.flags = 0;
  in.value = 0x1122334455667788ull;

  uint8_t buf[kResponseFrameBytes];
  EncodeResponse(in, buf);
  EXPECT_EQ(wire::GetU32(buf), kResponseBodyBytes);

  ResponseFrame out;
  DecodeResponseBody(buf + kLengthPrefixBytes, &out);
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.flags, in.flags);
  EXPECT_EQ(out.value, in.value);
}

TEST(NetProtocolTest, WireIsLittleEndian) {
  // The format is defined as little-endian on the wire; pin the byte
  // layout so both ends stay compatible regardless of host.
  uint8_t buf[8];
  wire::PutU32(buf, 0x04030201u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
  EXPECT_EQ(buf[2], 0x03);
  EXPECT_EQ(buf[3], 0x04);
  wire::PutU64(buf, 0x0807060504030201ull);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(wire::GetU64(buf), 0x0807060504030201ull);
}

TEST(NetProtocolTest, DecodeRejectsUnknownOp) {
  RequestFrame in;
  in.id = 9;
  in.op = static_cast<uint8_t>(graph::kNumGraphOps);  // one past the last op
  uint8_t buf[kRequestFrameBytes];
  const size_t n = EncodeRequest(in, buf);
  RequestFrame out;
  EXPECT_FALSE(DecodeRequestBody(buf + kLengthPrefixBytes,
                                 n - kLengthPrefixBytes, &out));
  // Fields are still filled so the server can echo the id in kBadRequest.
  EXPECT_EQ(out.id, 9u);
}

TEST(NetProtocolTest, DecodeRejectsUnknownFlagBits) {
  // Flag bits above kRequestFlagTenant are reserved and must reject.
  uint8_t body[kRequestBodyBytesV1] = {};
  body[8] = static_cast<uint8_t>(graph::GraphOp::kDegree);
  wire::PutU16(body + 10, 0x2);
  RequestFrame out;
  EXPECT_FALSE(DecodeRequestBody(body, kRequestBodyBytesV1, &out));
}

TEST(NetProtocolTest, AdminOpcodesAreDistinctFromGraphOps) {
  EXPECT_TRUE(IsAdminOp(kOpStatsJson));
  EXPECT_TRUE(IsAdminOp(kOpStatsPrometheus));
  EXPECT_TRUE(IsAdminOp(kOpTraceDump));
  EXPECT_FALSE(IsAdminOp(static_cast<uint8_t>(graph::GraphOp::kDegree)));
  EXPECT_FALSE(IsAdminOp(static_cast<uint8_t>(graph::kNumGraphOps) - 1));
  EXPECT_FALSE(IsAdminOp(kOpTraceDump + 1));
}

TEST(NetProtocolTest, AdminRequestRoundTrip) {
  RequestFrame in;
  in.id = 99;
  in.op = kOpStatsPrometheus;
  uint8_t buf[kRequestFrameBytes];
  const size_t n = EncodeRequest(in, buf);
  RequestFrame out;
  EXPECT_TRUE(DecodeRequestBody(buf + kLengthPrefixBytes,
                                n - kLengthPrefixBytes, &out));
  EXPECT_EQ(out.op, kOpStatsPrometheus);
  EXPECT_EQ(out.id, 99u);
}

TEST(NetProtocolTest, ResponseFlagsCarryRejectReasonCodes) {
  // The response flags byte is the RejectReason wire code; its numeric
  // values are a stable protocol surface clients decode, so pin them.
  EXPECT_EQ(static_cast<uint8_t>(RejectReason::kNone), 0);
  EXPECT_EQ(static_cast<uint8_t>(RejectReason::kPolicy), 1);
  EXPECT_EQ(static_cast<uint8_t>(RejectReason::kQueueFull), 2);
  EXPECT_EQ(static_cast<uint8_t>(RejectReason::kExpired), 3);
  EXPECT_EQ(static_cast<uint8_t>(RejectReason::kShardPolicy), 4);
  EXPECT_EQ(static_cast<uint8_t>(RejectReason::kShardQueueFull), 5);
  EXPECT_EQ(static_cast<uint8_t>(RejectReason::kShardExpired), 6);

  ResponseFrame in;
  in.id = 7;
  in.status = ResponseStatus::kFailed;
  in.flags = static_cast<uint8_t>(RejectReason::kShardQueueFull);
  uint8_t buf[kResponseFrameBytes];
  EncodeResponse(in, buf);
  ResponseFrame out;
  DecodeResponseBody(buf + kLengthPrefixBytes, &out);
  EXPECT_EQ(static_cast<RejectReason>(out.flags),
            RejectReason::kShardQueueFull);
}

TEST(NetProtocolTest, ToGraphQueryMapsAllFields) {
  RequestFrame frame;
  frame.op = static_cast<uint8_t>(graph::GraphOp::kCommonNeighbors);
  frame.source = 11;
  frame.target = 22;
  frame.external_id = 33;
  const graph::GraphQuery q = ToGraphQuery(frame);
  EXPECT_EQ(q.op, graph::GraphOp::kCommonNeighbors);
  EXPECT_EQ(q.source, 11u);
  EXPECT_EQ(q.target, 22u);
  EXPECT_EQ(q.external_id, 33u);
}

}  // namespace
}  // namespace bouncer::net
