// Unit tests for the vendored io_uring plumbing: the cached capability
// probe, ring setup/submit/drain and enter-call accounting, and the
// provided-buffer ring — including a functional regression for the C++
// flexible-array pitfall (io_uring_buf_ring::bufs lands at offset 8
// under C++ while the kernel reads entries from offset 0; Recycle must
// index the ring memory the way the kernel does or every published
// buffer is invisible and multishot recv dies with ENOBUFS).

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/net/uring_loop.h"

#if BOUNCER_HAS_IOURING
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace bouncer::net {
namespace {

TEST(UringLoopTest, ProbeIsCachedAndExplainsItself) {
  const UringSupport& support = QueryUringSupport();
  if (!support.supported) {
    EXPECT_FALSE(support.reason.empty())
        << "an unsupported verdict must say why";
  }
  // One probe per process: repeated calls return the same cached object.
  EXPECT_EQ(&support, &QueryUringSupport());
}

#if BOUNCER_HAS_IOURING

#define SKIP_WITHOUT_URING()                                        \
  do {                                                              \
    const UringSupport& support_ = QueryUringSupport();             \
    if (!support_.supported) {                                      \
      GTEST_SKIP() << "io_uring unavailable: " << support_.reason;  \
    }                                                               \
  } while (0)

TEST(UringLoopTest, RingSubmitsAndDrainsWithEnterAccounting) {
  SKIP_WITHOUT_URING();
  UringRing ring;
  ASSERT_TRUE(ring.Init(/*sq_entries=*/8, /*cq_entries=*/16).ok());
  ASSERT_TRUE(ring.valid());
  ring.TakeEnterCalls();  // Discard any probe-era residue.

  io_uring_sqe* sqe = ring.GetSqe();
  ASSERT_NE(sqe, nullptr);
  sqe->opcode = IORING_OP_NOP;
  sqe->user_data = 42;
  ASSERT_GE(ring.SubmitAndWait(/*min_complete=*/1,
                               /*timeout_ns=*/2'000'000'000),
            0);

  uint64_t seen = 0;
  const unsigned drained = ring.DrainCqes([&seen](const io_uring_cqe& cqe) {
    seen = cqe.user_data;
  });
  EXPECT_EQ(drained, 1u);
  EXPECT_EQ(seen, 42u);
  EXPECT_FALSE(ring.CqePending());

  // Exactly the enter calls made since the last Take, then zero again.
  EXPECT_GT(ring.TakeEnterCalls(), 0u);
  EXPECT_EQ(ring.TakeEnterCalls(), 0u);
}

TEST(UringLoopTest, GetSqeAutoFlushesWhenSubmissionRingFills) {
  SKIP_WITHOUT_URING();
  UringRing ring;
  ASSERT_TRUE(ring.Init(/*sq_entries=*/4, /*cq_entries=*/64).ok());
  // Prepare more NOPs than the SQ holds: GetSqe must flush mid-stream
  // rather than return nullptr.
  constexpr uint64_t kNops = 11;
  for (uint64_t i = 0; i < kNops; ++i) {
    io_uring_sqe* sqe = ring.GetSqe();
    ASSERT_NE(sqe, nullptr) << "auto-flush failed at sqe " << i;
    sqe->opcode = IORING_OP_NOP;
    sqe->user_data = i;
  }
  ASSERT_GE(ring.Submit(), 0);
  unsigned drained = 0;
  const auto deadline_spins = 1000;
  for (int spin = 0; spin < deadline_spins && drained < kNops; ++spin) {
    ring.SubmitAndWait(/*min_complete=*/1, /*timeout_ns=*/10'000'000);
    drained += ring.DrainCqes([](const io_uring_cqe&) {});
  }
  EXPECT_EQ(drained, kNops);
}

TEST(UringLoopTest, BufRingDeliversRecvIntoProvidedBuffers) {
  SKIP_WITHOUT_URING();
  UringRing ring;
  ASSERT_TRUE(ring.Init(/*sq_entries=*/8, /*cq_entries=*/16).ok());
  UringBufRing bufs;
  constexpr uint32_t kEntries = 4;
  constexpr uint32_t kBufBytes = 64;
  ASSERT_TRUE(bufs.Init(ring, /*bgid=*/7, kEntries, kBufBytes).ok());
  EXPECT_EQ(bufs.free_bufs(), kEntries);
  EXPECT_EQ(bufs.entries(), kEntries);
  EXPECT_EQ(bufs.buf_bytes(), kBufBytes);

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  io_uring_sqe* sqe = ring.GetSqe();
  ASSERT_NE(sqe, nullptr);
  PrepRecvMultishot(sqe, sv[0], /*buf_group=*/7, /*user_data=*/9);

  const char payload[] = "flex-array offset regression";
  ASSERT_EQ(::write(sv[1], payload, sizeof(payload)),
            static_cast<ssize_t>(sizeof(payload)));
  ASSERT_GE(ring.SubmitAndWait(/*min_complete=*/1,
                               /*timeout_ns=*/2'000'000'000),
            0);

  bool delivered = false;
  ring.DrainCqes([&](const io_uring_cqe& cqe) {
    if (cqe.user_data != 9 || delivered) return;
    // A successful buffer-selected recv — not ENOBUFS, which is what an
    // off-by-8 published entry produces.
    ASSERT_EQ(cqe.res, static_cast<int32_t>(sizeof(payload)));
    ASSERT_TRUE(cqe.flags & IORING_CQE_F_BUFFER);
    const auto bid =
        static_cast<uint16_t>(cqe.flags >> IORING_CQE_BUFFER_SHIFT);
    ASSERT_LT(bid, kEntries);
    bufs.Take();
    EXPECT_EQ(std::memcmp(bufs.Addr(bid), payload, sizeof(payload)), 0);
    EXPECT_EQ(bufs.free_bufs(), kEntries - 1);
    bufs.Recycle(bid);
    EXPECT_EQ(bufs.free_bufs(), kEntries);
    delivered = true;
  });
  EXPECT_TRUE(delivered);

  ::close(sv[0]);
  ::close(sv[1]);
  bufs.Destroy(ring);
}

#endif  // BOUNCER_HAS_IOURING

}  // namespace
}  // namespace bouncer::net
