#include "src/server/metrics_collector.h"

#include <gtest/gtest.h>

namespace bouncer::server {
namespace {

WorkItem ItemWithTimes(QueryTypeId type, Nanos wait, Nanos processing) {
  WorkItem item;
  item.type = type;
  item.enqueued = kSecond;
  item.dequeued = item.enqueued + wait;
  item.completed = item.dequeued + processing;
  return item;
}

TEST(MetricsCollectorTest, RecordsCompletion) {
  MetricsCollector collector(3);
  collector.Record(ItemWithTimes(1, 2 * kMillisecond, 8 * kMillisecond),
                   Outcome::kCompleted);
  const auto report = collector.Report(1);
  EXPECT_EQ(report.received, 1u);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_DOUBLE_EQ(report.rt_p50_ms, 10.0);
  EXPECT_DOUBLE_EQ(report.pt_p50_ms, 8.0);
}

TEST(MetricsCollectorTest, RecordsRejectionWithoutSamples) {
  MetricsCollector collector(3);
  collector.Record(ItemWithTimes(1, 0, 0), Outcome::kRejected);
  const auto report = collector.Report(1);
  EXPECT_EQ(report.received, 1u);
  EXPECT_EQ(report.rejected, 1u);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_DOUBLE_EQ(report.rejection_pct, 100.0);
}

TEST(MetricsCollectorTest, SheddedCountsAsRejected) {
  MetricsCollector collector(3);
  collector.Record(ItemWithTimes(1, 0, 0), Outcome::kShedded);
  EXPECT_EQ(collector.Report(1).rejected, 1u);
}

TEST(MetricsCollectorTest, ExpiredTrackedSeparately) {
  MetricsCollector collector(3);
  collector.Record(ItemWithTimes(1, 0, 0), Outcome::kExpired);
  const auto report = collector.Report(1);
  EXPECT_EQ(report.expired, 1u);
  EXPECT_EQ(report.rejected, 0u);
}

TEST(MetricsCollectorTest, RecordingToggle) {
  MetricsCollector collector(3);
  collector.SetRecording(false);
  collector.Record(ItemWithTimes(1, 0, kMillisecond), Outcome::kCompleted);
  EXPECT_EQ(collector.Report(1).received, 0u);
  collector.SetRecording(true);
  collector.Record(ItemWithTimes(1, 0, kMillisecond), Outcome::kCompleted);
  EXPECT_EQ(collector.Report(1).received, 1u);
}

TEST(MetricsCollectorTest, OutOfRangeTypeIgnored) {
  MetricsCollector collector(2);
  collector.Record(ItemWithTimes(9, 0, 0), Outcome::kCompleted);
  EXPECT_EQ(collector.Overall().received, 0u);
}

TEST(MetricsCollectorTest, OverallAggregates) {
  MetricsCollector collector(3);
  collector.Record(ItemWithTimes(1, 0, 2 * kMillisecond),
                   Outcome::kCompleted);
  collector.Record(ItemWithTimes(2, 0, 4 * kMillisecond),
                   Outcome::kCompleted);
  collector.Record(ItemWithTimes(2, 0, 0), Outcome::kRejected);
  const auto overall = collector.Overall();
  EXPECT_EQ(overall.received, 3u);
  EXPECT_EQ(overall.completed, 2u);
  EXPECT_NEAR(overall.rejection_pct, 100.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(overall.rt_mean_ms, 3.0);
}

TEST(MetricsCollectorTest, ResetClears) {
  MetricsCollector collector(2);
  collector.Record(ItemWithTimes(1, 0, kMillisecond), Outcome::kCompleted);
  collector.Reset();
  EXPECT_EQ(collector.Overall().received, 0u);
  EXPECT_DOUBLE_EQ(collector.Report(1).rt_p50_ms, 0.0);
}

}  // namespace
}  // namespace bouncer::server
