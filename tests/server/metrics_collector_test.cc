#include "src/server/metrics_collector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace bouncer::server {
namespace {

WorkItem ItemWithTimes(QueryTypeId type, Nanos wait, Nanos processing) {
  WorkItem item;
  item.type = type;
  item.enqueued = kSecond;
  item.dequeued = item.enqueued + wait;
  item.completed = item.dequeued + processing;
  return item;
}

TEST(MetricsCollectorTest, RecordsCompletion) {
  MetricsCollector collector(3);
  collector.Record(ItemWithTimes(1, 2 * kMillisecond, 8 * kMillisecond),
                   Outcome::kCompleted);
  const auto report = collector.Report(1);
  EXPECT_EQ(report.received, 1u);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_DOUBLE_EQ(report.rt_p50_ms, 10.0);
  EXPECT_DOUBLE_EQ(report.pt_p50_ms, 8.0);
}

TEST(MetricsCollectorTest, RecordsRejectionWithoutSamples) {
  MetricsCollector collector(3);
  collector.Record(ItemWithTimes(1, 0, 0), Outcome::kRejected);
  const auto report = collector.Report(1);
  EXPECT_EQ(report.received, 1u);
  EXPECT_EQ(report.rejected, 1u);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_DOUBLE_EQ(report.rejection_pct, 100.0);
}

TEST(MetricsCollectorTest, SheddedCountsAsRejected) {
  MetricsCollector collector(3);
  collector.Record(ItemWithTimes(1, 0, 0), Outcome::kShedded);
  EXPECT_EQ(collector.Report(1).rejected, 1u);
}

TEST(MetricsCollectorTest, ExpiredTrackedSeparately) {
  MetricsCollector collector(3);
  collector.Record(ItemWithTimes(1, 0, 0), Outcome::kExpired);
  const auto report = collector.Report(1);
  EXPECT_EQ(report.expired, 1u);
  EXPECT_EQ(report.rejected, 0u);
}

TEST(MetricsCollectorTest, RecordingToggle) {
  MetricsCollector collector(3);
  collector.SetRecording(false);
  collector.Record(ItemWithTimes(1, 0, kMillisecond), Outcome::kCompleted);
  EXPECT_EQ(collector.Report(1).received, 0u);
  collector.SetRecording(true);
  collector.Record(ItemWithTimes(1, 0, kMillisecond), Outcome::kCompleted);
  EXPECT_EQ(collector.Report(1).received, 1u);
}

TEST(MetricsCollectorTest, OutOfRangeTypeIgnored) {
  MetricsCollector collector(2);
  collector.Record(ItemWithTimes(9, 0, 0), Outcome::kCompleted);
  EXPECT_EQ(collector.Overall().received, 0u);
}

TEST(MetricsCollectorTest, OverallAggregates) {
  MetricsCollector collector(3);
  collector.Record(ItemWithTimes(1, 0, 2 * kMillisecond),
                   Outcome::kCompleted);
  collector.Record(ItemWithTimes(2, 0, 4 * kMillisecond),
                   Outcome::kCompleted);
  collector.Record(ItemWithTimes(2, 0, 0), Outcome::kRejected);
  const auto overall = collector.Overall();
  EXPECT_EQ(overall.received, 3u);
  EXPECT_EQ(overall.completed, 2u);
  EXPECT_NEAR(overall.rejection_pct, 100.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(overall.rt_mean_ms, 3.0);
}

TEST(MetricsCollectorTest, SnapshotsNeverTornUnderConcurrentRecording) {
  // Record() bumps the outcome counter before `received` (release), and
  // readers load `received` first (acquire); a snapshot must therefore
  // never show more received than the per-outcome counters explain —
  // for any type and for the Overall() aggregate — no matter how the
  // reader interleaves with the writers. At quiescence the counts match
  // exactly.
  constexpr size_t kTypes = 4;
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 50'000;
  MetricsCollector collector(kTypes + 1);
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&collector, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        const auto type = static_cast<QueryTypeId>(1 + (i + w) % kTypes);
        const auto outcome = static_cast<Outcome>(i % 4);
        collector.Record(ItemWithTimes(type, kMillisecond, kMillisecond),
                         outcome);
      }
    });
  }

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (QueryTypeId type = 1; type <= kTypes; ++type) {
        const auto report = collector.Report(type);
        // kShedded folds into `rejected`, so these four outcome buckets
        // partition every recorded item.
        ASSERT_LE(report.received,
                  report.completed + report.rejected + report.expired)
            << "torn per-type snapshot";
      }
      const auto overall = collector.Overall();
      ASSERT_LE(overall.received,
                overall.completed + overall.rejected + overall.expired)
          << "torn overall snapshot";
    }
  });

  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const auto overall = collector.Overall();
  const uint64_t total = kWriters * kPerWriter;
  EXPECT_EQ(overall.received, total);
  EXPECT_EQ(overall.completed + overall.rejected + overall.expired, total);
  // Outcome::kCompleted/kRejected/kExpired/kShedded each got total/4, and
  // shedded folds into rejected.
  EXPECT_EQ(overall.completed, total / 4);
  EXPECT_EQ(overall.rejected, total / 2);
  EXPECT_EQ(overall.expired, total / 4);
}

TEST(MetricsCollectorTest, BusyMsIsExactProcessingTimeSum) {
  // BusyMs() must come from the exactly-accumulated nanosecond sum, not
  // mean * count: many odd-valued samples would accumulate double
  // rounding error through the mean while the integer sum stays exact.
  MetricsCollector collector(2);
  constexpr int kItems = 10'000;
  constexpr Nanos kProcessing = 123'457;  // Odd ns, not ms-aligned.
  for (int i = 0; i < kItems; ++i) {
    collector.Record(ItemWithTimes(1, kMicrosecond, kProcessing),
                     Outcome::kCompleted);
  }
  const auto report = collector.Report(1);
  EXPECT_EQ(report.pt_total_ns, static_cast<int64_t>(kItems) * kProcessing);
  EXPECT_DOUBLE_EQ(report.BusyMs(),
                   static_cast<double>(kItems) * kProcessing / 1e6);
  // Non-completed outcomes charge no busy time.
  collector.Record(ItemWithTimes(1, 0, kSecond), Outcome::kRejected);
  EXPECT_EQ(collector.Report(1).pt_total_ns,
            static_cast<int64_t>(kItems) * kProcessing);
  // The overall aggregate sums the per-type exact sums.
  EXPECT_DOUBLE_EQ(collector.Overall().BusyMs(), report.BusyMs());
}

TEST(MetricsCollectorTest, ResetClears) {
  MetricsCollector collector(2);
  collector.Record(ItemWithTimes(1, 0, kMillisecond), Outcome::kCompleted);
  collector.Reset();
  EXPECT_EQ(collector.Overall().received, 0u);
  EXPECT_DOUBLE_EQ(collector.Report(1).rt_p50_ms, 0.0);
}

}  // namespace
}  // namespace bouncer::server
