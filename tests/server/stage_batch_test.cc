// Tests for Stage::SubmitBatch — the per-wakeup submit path of the
// network front-end. Covers: FIFO order within a batch, batch-block
// contiguity against concurrent Submit() traffic, partial shed with
// per-item OnShedded accounting, and a mixed-path stress run (the CI
// TSan job picks this binary up via the "Stage" suite-name regex).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/server/stage.h"

namespace bouncer::server {
namespace {

const Slo kSlo{18 * kMillisecond, 50 * kMillisecond, 0};

/// AlwaysAccept plus call counters for every policy hook, so tests can
/// assert the exact hook sequence SubmitBatch promises (per-item
/// OnShedded for the shed suffix, OnEnqueued only for pushed items).
class CountingPolicy : public AdmissionPolicy {
 public:
  Decision Decide(WorkKey, Nanos) override {
    decide.fetch_add(1, std::memory_order_relaxed);
    return Decision::kAccept;
  }
  void OnEnqueued(WorkKey, Nanos) override {
    enqueued.fetch_add(1, std::memory_order_relaxed);
  }
  void OnRejected(WorkKey, Nanos) override {
    rejected.fetch_add(1, std::memory_order_relaxed);
  }
  void OnDequeued(WorkKey, Nanos, Nanos) override {
    dequeued.fetch_add(1, std::memory_order_relaxed);
  }
  void OnShedded(WorkKey, Nanos) override {
    shedded.fetch_add(1, std::memory_order_relaxed);
  }
  void OnCompleted(WorkKey, Nanos, Nanos) override {
    completed.fetch_add(1, std::memory_order_relaxed);
  }
  std::string_view name() const override { return "Counting"; }

  std::atomic<uint64_t> decide{0};
  std::atomic<uint64_t> enqueued{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> dequeued{0};
  std::atomic<uint64_t> shedded{0};
  std::atomic<uint64_t> completed{0};
};

struct BatchFixture {
  explicit BatchFixture(size_t workers = 1, size_t queue_capacity = 100'000,
                        PolicyKind kind = PolicyKind::kAlwaysAccept)
      : registry(kSlo) {
    type_id = *registry.Register("t", kSlo);
    PolicyConfig config;
    config.kind = kind;
    Stage::Options options;
    options.name = "batch-test";
    options.num_workers = workers;
    options.queue_capacity = queue_capacity;
    stage = std::make_unique<Stage>(
        options, &registry, SystemClock::Global(),
        [&config](const PolicyContext& context) {
          return CreatePolicy(config, context);
        },
        [this](WorkItem& item) { Handle(item); });
  }

  /// Same shape, but with a CountingPolicy owned by the test (the raw
  /// PolicyFactory hands ownership to the stage; `counting` stays valid
  /// for the stage's lifetime).
  BatchFixture(size_t workers, size_t queue_capacity, CountingPolicy** out)
      : registry(kSlo) {
    type_id = *registry.Register("t", kSlo);
    Stage::Options options;
    options.name = "batch-test";
    options.num_workers = workers;
    options.queue_capacity = queue_capacity;
    stage = std::make_unique<Stage>(
        options, &registry, SystemClock::Global(),
        [out](const PolicyContext&)
            -> StatusOr<std::unique_ptr<AdmissionPolicy>> {
          auto policy = std::make_unique<CountingPolicy>();
          *out = policy.get();
          return StatusOr<std::unique_ptr<AdmissionPolicy>>(std::move(policy));
        },
        [this](WorkItem& item) { Handle(item); });
  }

  void Handle(WorkItem& item) {
    if (block_handler.load()) {
      std::unique_lock<std::mutex> lock(gate_mu);
      gate_cv.wait(lock, [this] { return !block_handler.load(); });
    }
    {
      std::lock_guard<std::mutex> lock(order_mu);
      handled_order.push_back(item.id);
    }
    handled.fetch_add(1);
  }

  void ReleaseHandlers() {
    {
      std::lock_guard<std::mutex> lock(gate_mu);
      block_handler.store(false);
    }
    gate_cv.notify_all();
  }

  WorkItem MakeItem(uint64_t id) {
    WorkItem item;
    item.type = type_id;
    item.id = id;
    item.on_complete = [this](const WorkItem&, Outcome outcome) {
      switch (outcome) {
        case Outcome::kCompleted:
          completed.fetch_add(1);
          break;
        case Outcome::kRejected:
          rejected.fetch_add(1);
          break;
        case Outcome::kExpired:
          expired.fetch_add(1);
          break;
        case Outcome::kShedded:
          shedded.fetch_add(1);
          break;
      }
      done_count.fetch_add(1);
    };
    return item;
  }

  std::vector<WorkItem> MakeBatch(uint64_t first_id, size_t count) {
    std::vector<WorkItem> batch;
    batch.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      batch.push_back(MakeItem(first_id + i));
    }
    return batch;
  }

  void WaitFor(std::atomic<int>& counter, int target, int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (counter.load() < target &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  QueryTypeRegistry registry;
  QueryTypeId type_id = 0;
  std::unique_ptr<Stage> stage;

  std::atomic<bool> block_handler{false};
  std::mutex gate_mu;
  std::condition_variable gate_cv;

  std::mutex order_mu;
  std::vector<uint64_t> handled_order;

  std::atomic<int> handled{0};
  std::atomic<int> completed{0};
  std::atomic<int> rejected{0};
  std::atomic<int> expired{0};
  std::atomic<int> shedded{0};
  std::atomic<int> done_count{0};
};

TEST(StageBatchTest, BatchPreservesFifoOrder) {
  BatchFixture f(/*workers=*/1);
  ASSERT_TRUE(f.stage->init_status().ok());
  ASSERT_TRUE(f.stage->Start().ok());

  auto batch = f.MakeBatch(0, 64);
  const auto result = f.stage->SubmitBatch(batch);
  EXPECT_EQ(result.admitted, 64u);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(result.shedded, 0u);

  f.WaitFor(f.completed, 64);
  f.stage->Stop();

  ASSERT_EQ(f.handled_order.size(), 64u);
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(f.handled_order[i], i) << "batch popped out of FIFO order";
  }
  EXPECT_EQ(f.done_count.load(), 64);
}

TEST(StageBatchTest, BatchBlockNotInterleavedWithConcurrentSubmit) {
  // A single worker pops everything, so handled_order is the exact ring
  // order. SubmitBatch reserves its block with one CAS; items pushed by
  // the concurrent Submit() thread must land wholly before or after each
  // batch block, never inside it.
  BatchFixture f(/*workers=*/1);
  ASSERT_TRUE(f.stage->init_status().ok());
  ASSERT_TRUE(f.stage->Start().ok());

  constexpr int kBatches = 50;
  constexpr int kBatchSize = 32;
  constexpr int kSingles = 800;
  std::atomic<bool> go{false};

  std::thread single_thread([&] {
    while (!go.load()) std::this_thread::yield();
    for (int i = 0; i < kSingles; ++i) {
      // Ids >= 1'000'000 mark single submissions.
      f.stage->Submit(f.MakeItem(1'000'000 + i));
    }
  });

  std::thread batch_thread([&] {
    while (!go.load()) std::this_thread::yield();
    for (int b = 0; b < kBatches; ++b) {
      auto batch = f.MakeBatch(static_cast<uint64_t>(b) * 1000, kBatchSize);
      const auto result = f.stage->SubmitBatch(batch);
      ASSERT_EQ(result.admitted, static_cast<uint32_t>(kBatchSize));
    }
  });

  go.store(true);
  single_thread.join();
  batch_thread.join();

  f.WaitFor(f.completed, kBatches * kBatchSize + kSingles);
  f.stage->Stop();

  ASSERT_EQ(f.handled_order.size(),
            static_cast<size_t>(kBatches * kBatchSize + kSingles));
  // Every batch's items must occupy consecutive positions, in order.
  std::vector<int> position(kBatches, -1);  // position of id b*1000 + 0
  for (size_t pos = 0; pos < f.handled_order.size(); ++pos) {
    const uint64_t id = f.handled_order[pos];
    if (id >= 1'000'000) continue;  // single submission
    const int b = static_cast<int>(id / 1000);
    const int offset = static_cast<int>(id % 1000);
    if (offset == 0) {
      position[b] = static_cast<int>(pos);
    } else {
      ASSERT_GE(position[b], 0) << "batch " << b << " popped out of order";
      EXPECT_EQ(static_cast<int>(pos), position[b] + offset)
          << "batch " << b << " interleaved with other traffic";
    }
  }
}

TEST(StageBatchTest, PartialShedFiresPerItemOnShedded) {
  // Ring capacity 4 (already a power of two), one worker blocked in the
  // handler: a 10-item batch can push at most 4; the 6-item suffix must
  // shed with one OnShedded + one on_complete(kShedded) each, inside the
  // SubmitBatch call.
  CountingPolicy* policy = nullptr;
  BatchFixture f(/*workers=*/1, /*queue_capacity=*/4, &policy);
  ASSERT_TRUE(f.stage->init_status().ok());
  ASSERT_NE(policy, nullptr);
  f.block_handler.store(true);
  ASSERT_TRUE(f.stage->Start().ok());

  // Park the worker inside the handler so it cannot drain the ring.
  f.stage->Submit(f.MakeItem(999));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (f.stage->QueueLength() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(f.stage->QueueLength(), 0u) << "worker never picked up the plug";

  auto batch = f.MakeBatch(0, 10);
  const auto result = f.stage->SubmitBatch(batch);
  EXPECT_EQ(result.admitted, 4u);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(result.shedded, 6u);
  // Shed completions are synchronous: they already fired.
  EXPECT_EQ(f.shedded.load(), 6);
  EXPECT_EQ(policy->decide.load(), 11u);    // plug + 10 batch items
  EXPECT_EQ(policy->enqueued.load(), 11u);  // every accepted item enqueues
  EXPECT_EQ(policy->shedded.load(), 6u);    // per-item, for the suffix only
  EXPECT_EQ(policy->rejected.load(), 0u);

  f.ReleaseHandlers();
  f.WaitFor(f.completed, 5);  // plug + the 4 pushed items
  f.stage->Stop();
  EXPECT_EQ(f.completed.load(), 5);
  EXPECT_EQ(f.done_count.load(), 11);

  // FIFO prefix: the 4 pushed items are ids 0..3, after the plug.
  ASSERT_EQ(f.handled_order.size(), 5u);
  EXPECT_EQ(f.handled_order[0], 999u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(f.handled_order[i + 1], i);
}

TEST(StageBatchTest, StressMixedSubmitPaths) {
  // TSan target: hammer SubmitBatch, Submit, SubmitInline and TryRunOne
  // from many threads at once; afterwards every item must have terminated
  // exactly once (done_count balances the per-outcome counters and the
  // stage's own counters).
  BatchFixture f(/*workers=*/3, /*queue_capacity=*/256);
  ASSERT_TRUE(f.stage->init_status().ok());
  ASSERT_TRUE(f.stage->Start().ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  std::atomic<int> submitted_total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t next_id = static_cast<uint64_t>(t) << 32;
      for (int i = 0; i < kPerThread; ++i) {
        switch ((t + i) % 4) {
          case 0: {
            auto batch = f.MakeBatch(next_id, 8);
            next_id += 8;
            f.stage->SubmitBatch(batch);
            submitted_total.fetch_add(8);
            break;
          }
          case 1:
            f.stage->Submit(f.MakeItem(next_id++));
            submitted_total.fetch_add(1);
            break;
          case 2:
            f.stage->SubmitInline(f.MakeItem(next_id++));
            submitted_total.fetch_add(1);
            break;
          case 3:
            f.stage->TryRunOne();
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  f.WaitFor(f.done_count, submitted_total.load(), 10'000);
  f.stage->Stop();

  EXPECT_EQ(f.done_count.load(), submitted_total.load());
  EXPECT_EQ(f.completed.load() + f.rejected.load() + f.expired.load() +
                f.shedded.load(),
            f.done_count.load());
  const auto counters = f.stage->counters();
  EXPECT_EQ(counters.received, static_cast<uint64_t>(submitted_total.load()));
  EXPECT_EQ(counters.completed + counters.rejected + counters.expired +
                counters.shedded,
            counters.received);
}

TEST(StageBatchTest, EmptyBatchIsNoop) {
  BatchFixture f(/*workers=*/1);
  ASSERT_TRUE(f.stage->init_status().ok());
  ASSERT_TRUE(f.stage->Start().ok());
  std::vector<WorkItem> empty;
  const auto result = f.stage->SubmitBatch(empty);
  EXPECT_EQ(result.admitted, 0u);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(result.shedded, 0u);
  f.stage->Stop();
  EXPECT_EQ(f.done_count.load(), 0);
}

}  // namespace
}  // namespace bouncer::server
