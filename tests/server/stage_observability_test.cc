// Observability wiring of the Stage: admission-time estimate stamping
// validated against the offline Eq. 2 oracle (EstimateQueueWaitSlow),
// the estimate-vs-actual error histograms, the "stage.<name>.*" metric
// collector, and the flight-recorder event chain of a sampled request.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/server/stage.h"
#include "src/stats/flight_recorder.h"
#include "src/stats/metric_registry.h"

namespace bouncer::server {
namespace {

const Slo kSlo{kSecond, 2 * kSecond, 0};

/// Unwraps the policy stack down to the BouncerPolicy.
BouncerPolicy* FindBouncer(AdmissionPolicy* policy) {
  for (;;) {
    if (auto* b = dynamic_cast<BouncerPolicy*>(policy)) return b;
    if (auto* g = dynamic_cast<QueueGuardPolicy*>(policy)) {
      policy = g->inner();
    } else if (auto* a = dynamic_cast<AcceptanceAllowancePolicy*>(policy)) {
      policy = a->inner();
    } else if (auto* u = dynamic_cast<HelpingUnderservedPolicy*>(policy)) {
      policy = u->inner();
    } else {
      return nullptr;
    }
  }
}

struct ObservabilityFixture {
  explicit ObservabilityFixture(size_t workers = 1, bool plugged = false)
      : registry(kSlo), plug(!plugged) {
    type_id = *registry.Register("t", kSlo);
    stats::FlightRecorder::Options trace_options;
    trace_options.sampling_period = 1;  // Trace every request.
    recorder.Configure(trace_options);
    recorder.SetEnabled(true);

    PolicyConfig config;
    config.kind = PolicyKind::kBouncer;
    Stage::Options options;
    options.name = "obs";
    options.num_workers = workers;
    options.metrics = &metrics;
    options.recorder = &recorder;
    stage = std::make_unique<Stage>(
        options, &registry, SystemClock::Global(),
        [&config](const PolicyContext& context) {
          return CreatePolicy(config, context);
        },
        [this](WorkItem& item) {
          (void)item;
          // Until Unplug(), the (single) worker parks here so queued
          // items behind it see a frozen queue.
          while (!plug.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
          handled.fetch_add(1);
        });
    EXPECT_TRUE(stage->init_status().ok());
    bouncer = FindBouncer(stage->policy());
    EXPECT_NE(bouncer, nullptr);

    // Warm the type's processing-time histogram and publish it so the
    // policy runs its steady-state estimate path.
    for (int i = 0; i < 64; ++i) {
      stage->policy()->OnCompleted(
          type_id, 50 * kMicrosecond + i * kMicrosecond, 0);
    }
    bouncer->ForceHistogramSwap();
  }

  void Unplug() { plug.store(true, std::memory_order_release); }

  QueryTypeRegistry registry;
  stats::FlightRecorder recorder;
  stats::MetricRegistry metrics;
  std::unique_ptr<Stage> stage;
  BouncerPolicy* bouncer = nullptr;
  QueryTypeId type_id = 0;
  std::atomic<int> handled{0};
  std::atomic<bool> plug;
};

TEST(StageObservabilityTest, StampedEstimateMatchesOfflineOracle) {
  // A plug item parks the single worker, so each Submit sees exactly the
  // queue the previous ones built — the stamped estimate must equal the
  // O(n) reference oracle computed over the same queue (the estimate
  // covers the work AHEAD of the item, so the oracle is evaluated just
  // before the submit).
  ObservabilityFixture fx(/*workers=*/1, /*plugged=*/true);
  ASSERT_TRUE(fx.stage->Start().ok());
  constexpr int kItems = 32;
  {
    WorkItem plug_item;
    plug_item.type = fx.type_id;
    plug_item.id = 1000;  // Outside the checked id range.
    ASSERT_EQ(fx.stage->Submit(std::move(plug_item)), Outcome::kCompleted);
  }
  // Wait until the worker has dequeued the plug and parked on it.
  const auto plug_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fx.stage->QueueLength() > 0 &&
         std::chrono::steady_clock::now() < plug_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(fx.stage->QueueLength(), 0u);

  std::vector<Nanos> oracle(kItems, -1);
  std::vector<Nanos> stamped(kItems, -1);
  std::atomic<int> completions{0};
  for (int i = 0; i < kItems; ++i) {
    oracle[i] = fx.bouncer->EstimateQueueWaitSlow(fx.type_id);
    WorkItem item;
    item.type = fx.type_id;
    item.id = static_cast<uint64_t>(i);
    item.on_complete = [&stamped, &completions](const WorkItem& done,
                                                Outcome) {
      stamped[done.id] = done.estimated_wait;
      completions.fetch_add(1);
    };
    EXPECT_EQ(fx.stage->Submit(std::move(item)), Outcome::kCompleted);
  }
  fx.Unplug();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (completions.load() < kItems &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  fx.stage->Stop();
  ASSERT_EQ(completions.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(stamped[i], oracle[i]) << "item " << i;
  }
  // A non-empty queue yields a positive estimate (warmed ~50us means).
  EXPECT_GT(stamped[kItems - 1], 0);

  // Every request was sampled: the trace holds an admission event per
  // item, stamping the same estimate in arg0.
  std::string dump;
  fx.recorder.Dump(&dump);
  for (int i = 0; i < kItems; ++i) {
    EXPECT_NE(
        dump.find("\"id\":" + std::to_string(i) + ",\"kind\":\"admission\""),
        std::string::npos)
        << "item " << i;
  }
  EXPECT_NE(dump.find("\"arg0\":" + std::to_string(oracle[kItems - 1])),
            std::string::npos);
}

TEST(StageObservabilityTest, ErrorHistogramsAndCollectorPopulate) {
  ObservabilityFixture fx;
  ASSERT_TRUE(fx.stage->Start().ok());
  constexpr int kItems = 200;
  std::atomic<int> completions{0};
  for (int i = 0; i < kItems; ++i) {
    WorkItem item;
    item.type = fx.type_id;
    item.id = static_cast<uint64_t>(i);
    item.on_complete = [&completions](const WorkItem&, Outcome) {
      completions.fetch_add(1);
    };
    fx.stage->Submit(std::move(item));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (completions.load() < kItems &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(completions.load(), kItems);

  // The estimate-vs-actual error of every dequeued item landed in
  // exactly one of the two signed-split histograms.
  const stats::MetricSnapshot snapshot = fx.metrics.Snapshot();
  uint64_t err_count = 0;
  for (const auto& [name, summary] : snapshot.histograms) {
    if (name == "stage.obs.est_wait_err_under_ns" ||
        name == "stage.obs.est_wait_err_over_ns") {
      err_count += summary.count;
    }
  }
  EXPECT_EQ(err_count, static_cast<uint64_t>(kItems));

  // The stage's collector published its counters under "stage.obs.".
  uint64_t received = 0, completed = 0;
  bool saw_queue_gauge = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "stage.obs.received") received = value;
    if (name == "stage.obs.completed") completed = value;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "stage.obs.queue_length") {
      saw_queue_gauge = true;
      EXPECT_EQ(value, 0);  // Drained.
    }
  }
  EXPECT_EQ(received, static_cast<uint64_t>(kItems));
  EXPECT_EQ(completed, static_cast<uint64_t>(kItems));
  EXPECT_TRUE(saw_queue_gauge);

  // Sampled requests stamped the full admission -> dequeue chain.
  std::string dump;
  fx.recorder.Dump(&dump);
  EXPECT_NE(dump.find("\"kind\":\"admission\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"dequeue\""), std::string::npos);
  fx.stage->Stop();
}

TEST(StageObservabilityTest, UntracedUnmeteredStageSkipsStamping) {
  // Without a registry or an enabled recorder the estimate is never
  // computed (the stamp is observer-driven), so the hot path pays only
  // the sampling check.
  QueryTypeRegistry registry(kSlo);
  const QueryTypeId type_id = *registry.Register("t", kSlo);
  stats::FlightRecorder recorder;  // Disabled.
  PolicyConfig config;
  config.kind = PolicyKind::kBouncer;
  Stage::Options options;
  options.name = "quiet";
  options.recorder = &recorder;
  Stage stage(
      options, &registry, SystemClock::Global(),
      [&config](const PolicyContext& context) {
        return CreatePolicy(config, context);
      },
      [](WorkItem&) {});
  ASSERT_TRUE(stage.init_status().ok());
  ASSERT_TRUE(stage.Start().ok());
  std::atomic<Nanos> stamped{-99};
  WorkItem item;
  item.type = type_id;
  item.on_complete = [&stamped](const WorkItem& done, Outcome) {
    stamped.store(done.estimated_wait, std::memory_order_release);
  };
  stage.Submit(std::move(item));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (stamped.load(std::memory_order_acquire) == -99 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stage.Stop();
  EXPECT_EQ(stamped.load(), -1);
  std::string dump;
  EXPECT_EQ(recorder.Dump(&dump), 0u);
}

}  // namespace
}  // namespace bouncer::server
