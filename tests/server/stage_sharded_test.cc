// Shared-nothing execution-core tests: run-queue shard resolution, the
// SubmitBatch ordering contract under stealing, starvation (idle workers
// must steal a hot ring dry), shed accounting when the preferred ring
// fills, and a TSan-targeted stress where broker-like threads
// TryRunOne-steal from a sharded stage mid-submit.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/server/stage.h"

namespace bouncer::server {
namespace {

const Slo kSlo{18 * kMillisecond, 50 * kMillisecond, 0};

/// A stage whose handler appends each item's id to a shared log (and
/// optionally spins), plus per-outcome tallies.
struct ShardedFixture {
  explicit ShardedFixture(const Stage::Options& stage_options,
                          Nanos busy = 0)
      : registry(kSlo), busy_ns(busy) {
    type_id = *registry.Register("t", kSlo);
    PolicyConfig config;
    config.kind = PolicyKind::kAlwaysAccept;
    stage = std::make_unique<Stage>(
        stage_options, &registry, SystemClock::Global(),
        [&config](const PolicyContext& context) {
          return CreatePolicy(config, context);
        },
        [this](WorkItem& item) {
          {
            std::lock_guard<std::mutex> lock(mu);
            handled_ids.push_back(item.id);
            handler_threads.insert(std::this_thread::get_id());
          }
          if (busy_ns > 0) {
            const auto until = std::chrono::steady_clock::now() +
                               std::chrono::nanoseconds(busy_ns);
            while (std::chrono::steady_clock::now() < until) {
            }
          }
        });
  }

  std::vector<WorkItem> MakeBatch(uint64_t first_id, size_t count) {
    std::vector<WorkItem> items;
    items.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      WorkItem item;
      item.type = type_id;
      item.id = first_id + i;
      item.on_complete = [this](const WorkItem&, Outcome outcome) {
        switch (outcome) {
          case Outcome::kCompleted:
            completed.fetch_add(1);
            break;
          case Outcome::kRejected:
            rejected.fetch_add(1);
            break;
          case Outcome::kExpired:
            expired.fetch_add(1);
            break;
          case Outcome::kShedded:
            shedded.fetch_add(1);
            break;
        }
        done_count.fetch_add(1);
      };
      items.push_back(std::move(item));
    }
    return items;
  }

  void WaitForDone(int target, int timeout_ms = 10'000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (done_count.load() < target &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  QueryTypeRegistry registry;
  QueryTypeId type_id = 0;
  std::unique_ptr<Stage> stage;
  Nanos busy_ns = 0;

  std::mutex mu;
  std::vector<uint64_t> handled_ids;
  std::set<std::thread::id> handler_threads;
  std::atomic<int> completed{0};
  std::atomic<int> rejected{0};
  std::atomic<int> expired{0};
  std::atomic<int> shedded{0};
  std::atomic<int> done_count{0};
};

TEST(StageShardedTest, DefaultsToOneRunQueuePerWorker) {
  Stage::Options options;
  options.num_workers = 3;
  ShardedFixture f(options);
  EXPECT_EQ(f.stage->num_run_queues(), 3u);
  EXPECT_EQ(f.stage->queue_state().num_stripes(), 3u);
}

TEST(StageShardedTest, ForceSingleQueueCollapsesToOneRing) {
  Stage::Options options;
  options.num_workers = 4;
  options.num_run_queues = 8;
  options.force_single_queue = true;
  ShardedFixture f(options);
  EXPECT_EQ(f.stage->num_run_queues(), 1u);
  EXPECT_EQ(f.stage->queue_state().num_stripes(), 1u);
}

TEST(StageShardedTest, ExplicitRunQueueCountIsCapped) {
  Stage::Options options;
  options.num_workers = 2;
  options.num_run_queues = 100;
  options.queue_capacity = 256;
  ShardedFixture f(options);
  EXPECT_EQ(f.stage->num_run_queues(), 64u);
}

// The SubmitBatch ordering contract under stealing: each batch is one
// contiguous block of one ring, blocks on the same ring never
// interleave, and per-batch order survives TryRunOne steals. The stage
// is never started, so the test thread is the only consumer and drains
// everything through the steal protocol.
TEST(StageShardedTest, BatchContiguityUnderSteal) {
  Stage::Options options;
  options.num_workers = 1;
  options.num_run_queues = 2;
  options.queue_capacity = 1024;
  ShardedFixture f(options);
  ASSERT_EQ(f.stage->num_run_queues(), 2u);

  std::vector<WorkItem> batch_a = f.MakeBatch(100, 10);
  std::vector<WorkItem> batch_b = f.MakeBatch(200, 10);
  std::vector<WorkItem> batch_c = f.MakeBatch(300, 10);
  // A and B target ring 0 (B's block lands wholly after A's); C targets
  // ring 1 and must never split them.
  EXPECT_EQ(f.stage->SubmitBatch(batch_a, /*submitter=*/0).admitted, 10u);
  EXPECT_EQ(f.stage->SubmitBatch(batch_c, /*submitter=*/1).admitted, 10u);
  EXPECT_EQ(f.stage->SubmitBatch(batch_b, /*submitter=*/0).admitted, 10u);
  EXPECT_EQ(f.stage->RunQueueLength(0), 20u);
  EXPECT_EQ(f.stage->RunQueueLength(1), 10u);

  while (f.stage->TryRunOne()) {
  }
  EXPECT_EQ(f.completed.load(), 30);

  // Filter the handler sequence per ring: ring 0 must replay A's block
  // then B's block exactly; ring 1 must replay C in order.
  std::vector<uint64_t> ring0;
  std::vector<uint64_t> ring1;
  for (const uint64_t id : f.handled_ids) {
    (id < 300 ? ring0 : ring1).push_back(id);
  }
  std::vector<uint64_t> want0;
  for (uint64_t id = 100; id < 110; ++id) want0.push_back(id);
  for (uint64_t id = 200; id < 210; ++id) want0.push_back(id);
  std::vector<uint64_t> want1;
  for (uint64_t id = 300; id < 310; ++id) want1.push_back(id);
  EXPECT_EQ(ring0, want0);
  EXPECT_EQ(ring1, want1);
}

// One hot ring, idle workers everywhere else: every item is hinted to
// ring 0, and the other workers must steal it dry — all items complete
// and more than one worker thread runs the handler.
TEST(StageShardedTest, IdleWorkersStealHotRingDry) {
  Stage::Options options;
  options.num_workers = 4;
  options.num_run_queues = 4;
  options.queue_capacity = 4096;
  ShardedFixture f(options, /*busy=*/50 * kMicrosecond);
  ASSERT_TRUE(f.stage->Start().ok());

  constexpr int kItems = 400;
  for (int i = 0; i < kItems; i += 8) {
    std::vector<WorkItem> batch = f.MakeBatch(static_cast<uint64_t>(i), 8);
    f.stage->SubmitBatch(batch, /*submitter=*/0);
  }
  f.WaitForDone(kItems);
  f.stage->Stop();

  EXPECT_EQ(f.completed.load(), kItems);
  EXPECT_EQ(f.stage->counters().completed, static_cast<uint64_t>(kItems));
  std::lock_guard<std::mutex> lock(f.mu);
  EXPECT_GE(f.handler_threads.size(), 2u)
      << "no worker stole from the hot ring";
}

// A full preferred ring sheds the batch remainder even when other rings
// have space: spilling would break the contiguous-block guarantee.
TEST(StageShardedTest, ShedsRemainderWhenPreferredRingFull) {
  Stage::Options options;
  options.num_workers = 1;
  options.num_run_queues = 2;
  options.queue_capacity = 8;  // Per-ring capacity 4.
  ShardedFixture f(options);

  std::vector<WorkItem> batch = f.MakeBatch(0, 10);
  const Stage::BatchResult result =
      f.stage->SubmitBatch(batch, /*submitter=*/0);
  EXPECT_EQ(result.admitted, 4u);
  EXPECT_EQ(result.shedded, 6u);
  EXPECT_EQ(f.shedded.load(), 6);
  EXPECT_EQ(f.stage->RunQueueLength(0), 4u);
  EXPECT_EQ(f.stage->RunQueueLength(1), 0u);
  EXPECT_EQ(f.stage->counters().shedded, 6u);

  // The admitted FIFO prefix survives in order.
  while (f.stage->TryRunOne()) {
  }
  std::vector<uint64_t> want = {0, 1, 2, 3};
  EXPECT_EQ(f.handled_ids, want);
}

// TSan target: broker-like threads TryRunOne-steal from every ring while
// submitter threads with distinct ring hints keep pushing batches and
// the worker pool drains — every submitted item terminates exactly once.
TEST(StageShardedTest, TryRunOneStealStress) {
  Stage::Options options;
  options.num_workers = 2;
  options.num_run_queues = 4;
  options.queue_capacity = 1 << 14;
  ShardedFixture f(options);
  ASSERT_TRUE(f.stage->Start().ok());

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 512;
  std::atomic<bool> stop_helpers{false};
  std::vector<std::thread> helpers;
  for (int h = 0; h < 2; ++h) {
    helpers.emplace_back([&] {
      while (!stop_helpers.load(std::memory_order_acquire)) {
        if (!f.stage->TryRunOne()) std::this_thread::yield();
      }
    });
  }
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerSubmitter; i += 8) {
        std::vector<WorkItem> batch = f.MakeBatch(
            (static_cast<uint64_t>(s) << 32) | static_cast<uint64_t>(i), 8);
        f.stage->SubmitBatch(batch, static_cast<uint32_t>(s));
      }
    });
  }
  for (auto& t : submitters) t.join();

  constexpr int kTotal = kSubmitters * kPerSubmitter;
  f.WaitForDone(kTotal);
  stop_helpers.store(true, std::memory_order_release);
  for (auto& t : helpers) t.join();
  f.stage->Stop();

  EXPECT_EQ(f.done_count.load(), kTotal);
  EXPECT_EQ(f.completed.load(), kTotal);
  const StageCounters counters = f.stage->counters();
  EXPECT_EQ(counters.received, static_cast<uint64_t>(kTotal));
  EXPECT_EQ(counters.completed, static_cast<uint64_t>(kTotal));
}

// More rings than workers: the extra rings have no home worker and are
// reachable only through stealing, yet everything completes.
TEST(StageShardedTest, RingsWithoutHomeWorkerAreDrained) {
  Stage::Options options;
  options.num_workers = 1;
  options.num_run_queues = 4;
  options.queue_capacity = 1024;
  ShardedFixture f(options);
  ASSERT_TRUE(f.stage->Start().ok());

  for (uint32_t ring = 0; ring < 4; ++ring) {
    std::vector<WorkItem> batch = f.MakeBatch(ring * 100, 16);
    EXPECT_EQ(f.stage->SubmitBatch(batch, ring).admitted, 16u);
  }
  f.WaitForDone(64);
  f.stage->Stop();
  EXPECT_EQ(f.completed.load(), 64);
}

}  // namespace
}  // namespace bouncer::server
