#include "src/server/stage.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "src/core/policy_factory.h"
#include "src/core/tenant_registry.h"
#include "src/stats/flight_recorder.h"

namespace bouncer::server {
namespace {

const Slo kSlo{18 * kMillisecond, 50 * kMillisecond, 0};

struct StageFixture {
  explicit StageFixture(PolicyKind kind = PolicyKind::kAlwaysAccept,
                        size_t workers = 2)
      : registry(kSlo) {
    type_id = *registry.Register("t", kSlo);
    PolicyConfig config;
    config.kind = kind;
    if (kind == PolicyKind::kMaxQueueLength) {
      config.max_queue_length.length_limit = 2;
    }
    Stage::Options options;
    options.name = "test";
    options.num_workers = workers;
    stage = std::make_unique<Stage>(
        options, &registry, SystemClock::Global(),
        [&config](const PolicyContext& context) {
          return CreatePolicy(config, context);
        },
        [this](WorkItem& item) { Handle(item); });
  }

  void Handle(WorkItem& item) {
    (void)item;
    handled.fetch_add(1);
    if (busy_ns > 0) {
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::nanoseconds(busy_ns);
      while (std::chrono::steady_clock::now() < until) {
      }
    }
  }

  WorkItem MakeItem() {
    WorkItem item;
    item.type = type_id;
    item.on_complete = [this](const WorkItem&, Outcome outcome) {
      switch (outcome) {
        case Outcome::kCompleted:
          completed.fetch_add(1);
          break;
        case Outcome::kRejected:
          rejected.fetch_add(1);
          break;
        case Outcome::kExpired:
          expired.fetch_add(1);
          break;
        case Outcome::kShedded:
          shedded.fetch_add(1);
          break;
      }
      done_count.fetch_add(1);
    };
    return item;
  }

  void WaitFor(std::atomic<int>& counter, int target,
               int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (counter.load() < target &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  QueryTypeRegistry registry;
  QueryTypeId type_id = 0;
  std::unique_ptr<Stage> stage;
  Nanos busy_ns = 0;
  std::atomic<int> handled{0};
  std::atomic<int> completed{0};
  std::atomic<int> rejected{0};
  std::atomic<int> expired{0};
  std::atomic<int> shedded{0};
  std::atomic<int> done_count{0};
};

TEST(StageTest, InitStatusOkForValidConfig) {
  StageFixture f;
  EXPECT_TRUE(f.stage->init_status().ok());
}

TEST(StageTest, StartTwiceFails) {
  StageFixture f;
  ASSERT_TRUE(f.stage->Start().ok());
  EXPECT_EQ(f.stage->Start().code(), StatusCode::kFailedPrecondition);
  f.stage->Stop();
}

TEST(StageTest, ProcessesSubmittedWork) {
  StageFixture f;
  ASSERT_TRUE(f.stage->Start().ok());
  for (int i = 0; i < 50; ++i) f.stage->Submit(f.MakeItem());
  f.WaitFor(f.completed, 50);
  f.stage->Stop();
  EXPECT_EQ(f.completed.load(), 50);
  EXPECT_EQ(f.stage->counters().completed, 50u);
  EXPECT_EQ(f.stage->counters().received, 50u);
}

TEST(StageTest, TimestampsAreOrdered) {
  StageFixture f;
  ASSERT_TRUE(f.stage->Start().ok());
  std::atomic<bool> checked{false};
  WorkItem item;
  item.type = f.type_id;
  item.on_complete = [&](const WorkItem& w, Outcome outcome) {
    EXPECT_EQ(outcome, Outcome::kCompleted);
    EXPECT_GT(w.enqueued, 0);
    EXPECT_GE(w.dequeued, w.enqueued);
    EXPECT_GE(w.completed, w.dequeued);
    EXPECT_GE(w.WaitTime(), 0);
    EXPECT_GE(w.ProcessingTime(), 0);
    EXPECT_EQ(w.ResponseTime(), w.WaitTime() + w.ProcessingTime());
    checked.store(true);
  };
  f.stage->Submit(std::move(item));
  f.WaitFor(f.handled, 1);
  f.stage->Stop();
  EXPECT_TRUE(checked.load());
}

TEST(StageTest, PolicyRejectionIsEarly) {
  StageFixture f(PolicyKind::kMaxQueueLength, /*workers=*/1);
  // Don't start the stage: submissions queue up, then exceed the limit.
  ASSERT_TRUE(f.stage->Start().ok());
  f.busy_ns = 50 * kMillisecond;
  // Saturate the single worker and fill the queue past the limit of 2.
  int rejected_now = 0;
  for (int i = 0; i < 10; ++i) {
    if (f.stage->Submit(f.MakeItem()) == Outcome::kRejected) ++rejected_now;
  }
  EXPECT_GT(rejected_now, 0);  // Early rejection returned synchronously.
  EXPECT_EQ(f.rejected.load(), rejected_now);  // Callback already ran.
  f.stage->Stop(false);
}

TEST(StageTest, ExpiredItemsSkipProcessing) {
  StageFixture f(PolicyKind::kAlwaysAccept, /*workers=*/1);
  ASSERT_TRUE(f.stage->Start().ok());
  f.busy_ns = 30 * kMillisecond;
  // First item occupies the worker; the second expires while queued.
  f.stage->Submit(f.MakeItem());
  WorkItem doomed = f.MakeItem();
  doomed.deadline = SystemClock::Global()->Now() + 5 * kMillisecond;
  f.stage->Submit(std::move(doomed));
  f.WaitFor(f.done_count, 2);
  f.stage->Stop();
  EXPECT_EQ(f.completed.load(), 1);
  EXPECT_EQ(f.expired.load(), 1);
  EXPECT_EQ(f.handled.load(), 1);  // The expired one never ran.
  EXPECT_EQ(f.stage->counters().expired, 1u);
}

TEST(StageTest, QueueCapacitySheds) {
  StageFixture f;
  Stage::Options options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  PolicyConfig config;
  config.kind = PolicyKind::kAlwaysAccept;
  Stage stage(
      options, &f.registry, SystemClock::Global(),
      [&config](const PolicyContext& context) {
        return CreatePolicy(config, context);
      },
      [&f](WorkItem& item) { f.Handle(item); });
  ASSERT_TRUE(stage.Start().ok());
  f.busy_ns = 30 * kMillisecond;
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    if (stage.Submit(f.MakeItem()) == Outcome::kShedded) ++shed;
  }
  EXPECT_GT(shed, 0);
  stage.Stop(false);
}

TEST(StageTest, StopWithoutDrainShedsQueued) {
  StageFixture f(PolicyKind::kAlwaysAccept, /*workers=*/1);
  ASSERT_TRUE(f.stage->Start().ok());
  f.busy_ns = 20 * kMillisecond;
  for (int i = 0; i < 5; ++i) f.stage->Submit(f.MakeItem());
  f.WaitFor(f.handled, 1);
  f.stage->Stop(false);
  // All five items terminated exactly once.
  EXPECT_EQ(f.done_count.load(), 5);
  EXPECT_GT(f.shedded.load() + f.completed.load(), 0);
}

TEST(StageTest, DrainCompletesEverything) {
  StageFixture f(PolicyKind::kAlwaysAccept, /*workers=*/2);
  ASSERT_TRUE(f.stage->Start().ok());
  for (int i = 0; i < 100; ++i) f.stage->Submit(f.MakeItem());
  f.stage->Stop(true);
  EXPECT_EQ(f.completed.load(), 100);
}

TEST(StageTest, QueueStateConsistentAfterDrain) {
  StageFixture f;
  ASSERT_TRUE(f.stage->Start().ok());
  for (int i = 0; i < 200; ++i) f.stage->Submit(f.MakeItem());
  f.WaitFor(f.completed, 200);
  EXPECT_EQ(f.stage->queue_state().TotalLength(), 0u);
  EXPECT_EQ(f.stage->QueueLength(), 0u);
  f.stage->Stop();
}

TEST(StageTest, ConcurrentSubmitters) {
  StageFixture f(PolicyKind::kAlwaysAccept, /*workers=*/4);
  ASSERT_TRUE(f.stage->Start().ok());
  std::vector<std::thread> submitters;
  constexpr int kPerThread = 500;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&f] {
      for (int i = 0; i < kPerThread; ++i) f.stage->Submit(f.MakeItem());
    });
  }
  for (auto& t : submitters) t.join();
  f.WaitFor(f.done_count, 4 * kPerThread);
  f.stage->Stop();
  EXPECT_EQ(f.done_count.load(), 4 * kPerThread);
  EXPECT_EQ(f.stage->counters().received,
            static_cast<uint64_t>(4 * kPerThread));
}

/// Counts every policy hook invocation, so tests can assert the stage
/// keeps the hook protocol balanced even on the shed paths.
class ProbePolicy final : public AdmissionPolicy {
 public:
  Decision Decide(WorkKey, Nanos) override {
    decided.fetch_add(1);
    return Decision::kAccept;
  }
  void OnEnqueued(WorkKey, Nanos) override { enqueued.fetch_add(1); }
  void OnRejected(WorkKey, Nanos) override { rejected.fetch_add(1); }
  void OnDequeued(WorkKey, Nanos, Nanos) override {
    dequeued.fetch_add(1);
  }
  void OnCompleted(WorkKey, Nanos, Nanos) override {
    processed.fetch_add(1);
  }
  void OnShedded(WorkKey, Nanos) override { shedded.fetch_add(1); }
  std::string_view name() const override { return "Probe"; }

  std::atomic<uint64_t> decided{0};
  std::atomic<uint64_t> enqueued{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> dequeued{0};
  std::atomic<uint64_t> processed{0};
  std::atomic<uint64_t> shedded{0};
};

// When the bounded queue sheds an accepted item, the policy must hear
// about it (OnShedded) so allowance/fraction windows stay honest: for
// every OnEnqueued there is exactly one OnDequeued or OnShedded.
TEST(StageTest, SheddingNotifiesPolicy) {
  StageFixture f;
  Stage::Options options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  ProbePolicy* probe = nullptr;
  Stage stage(
      options, &f.registry, SystemClock::Global(),
      [&probe](const PolicyContext&)
          -> StatusOr<std::unique_ptr<AdmissionPolicy>> {
        auto policy = std::make_unique<ProbePolicy>();
        probe = policy.get();
        return StatusOr<std::unique_ptr<AdmissionPolicy>>(std::move(policy));
      },
      [&f](WorkItem& item) { f.Handle(item); });
  ASSERT_TRUE(stage.Start().ok());
  ASSERT_NE(probe, nullptr);
  f.busy_ns = 20 * kMillisecond;
  constexpr int kSubmitted = 32;
  for (int i = 0; i < kSubmitted; ++i) stage.Submit(f.MakeItem());
  stage.Stop(false);

  // Every submission terminated exactly once.
  EXPECT_EQ(f.done_count.load(), kSubmitted);
  // The ring (capacity 2) plus one busy worker cannot absorb 32 items.
  EXPECT_GT(f.shedded.load(), 0);
  // Stage counters and policy hooks tell the same story.
  EXPECT_EQ(probe->shedded.load(), stage.counters().shedded);
  EXPECT_EQ(probe->enqueued.load(),
            probe->dequeued.load() + probe->shedded.load());
  EXPECT_EQ(stage.queue_state().TotalLength(), 0u);
}

// Many submitters racing a tiny ring and slow workers: exactly-once
// terminal outcomes and a balanced hook ledger under real contention.
TEST(StageTest, ConcurrentSheddingStress) {
  StageFixture f;
  Stage::Options options;
  options.num_workers = 2;
  options.queue_capacity = 4;
  ProbePolicy* probe = nullptr;
  Stage stage(
      options, &f.registry, SystemClock::Global(),
      [&probe](const PolicyContext&)
          -> StatusOr<std::unique_ptr<AdmissionPolicy>> {
        auto policy = std::make_unique<ProbePolicy>();
        probe = policy.get();
        return StatusOr<std::unique_ptr<AdmissionPolicy>>(std::move(policy));
      },
      [&f](WorkItem& item) { f.Handle(item); });
  ASSERT_TRUE(stage.Start().ok());
  f.busy_ns = 100 * kMicrosecond;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) stage.Submit(f.MakeItem());
    });
  }
  for (auto& t : submitters) t.join();
  stage.Stop(true);  // Drain: queued work completes.

  EXPECT_EQ(f.done_count.load(), kThreads * kPerThread);
  EXPECT_EQ(stage.counters().received,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(probe->enqueued.load(),
            probe->dequeued.load() + probe->shedded.load());
  EXPECT_EQ(stage.queue_state().TotalLength(), 0u);
  // Accepted items completed; shedded items never touched a worker.
  EXPECT_EQ(stage.counters().accepted,
            probe->dequeued.load());
  EXPECT_EQ(static_cast<uint64_t>(f.completed.load() + f.expired.load()),
            probe->dequeued.load());
}

// SubmitInline on an empty-and-admitting stage runs the handler (and
// Points 2–3 plus on_complete) on the calling thread, before returning.
TEST(StageTest, SubmitInlineRunsOnCallerWhenIdle) {
  StageFixture f;
  std::atomic<bool> ran_on_caller{false};
  Stage::Options options;
  options.num_workers = 2;
  PolicyConfig config;
  config.kind = PolicyKind::kAlwaysAccept;
  const std::thread::id caller = std::this_thread::get_id();
  Stage stage(
      options, &f.registry, SystemClock::Global(),
      [&config](const PolicyContext& context) {
        return CreatePolicy(config, context);
      },
      [&](WorkItem&) {
        ran_on_caller.store(std::this_thread::get_id() == caller);
      });
  ASSERT_TRUE(stage.Start().ok());
  EXPECT_EQ(stage.SubmitInline(f.MakeItem()), Outcome::kCompleted);
  // Synchronous: the terminal callback already fired when we return.
  EXPECT_EQ(f.completed.load(), 1);
  EXPECT_TRUE(ran_on_caller.load());
  EXPECT_EQ(stage.counters().completed, 1u);
  EXPECT_EQ(stage.queue_state().TotalLength(), 0u);
  stage.Stop();
}

// With work already queued ahead, SubmitInline must fall back to the
// FIFO: running inline would overtake queued items.
TEST(StageTest, SubmitInlineFallsBackWhenBusy) {
  StageFixture f(PolicyKind::kAlwaysAccept, /*workers=*/1);
  ASSERT_TRUE(f.stage->Start().ok());
  f.busy_ns = 50 * kMillisecond;
  f.stage->Submit(f.MakeItem());  // Occupies the single worker.
  f.WaitFor(f.handled, 1);
  f.stage->Submit(f.MakeItem());  // Queued behind it.
  f.stage->SubmitInline(f.MakeItem());
  // Had it run inline, its terminal callback would have fired already
  // (the first item is still busy for ~50 ms, the second still queued).
  EXPECT_EQ(f.completed.load(), 0);
  f.WaitFor(f.completed, 3);
  f.stage->Stop();
  EXPECT_EQ(f.completed.load(), 3);
}

// SubmitInline still runs Point 1 first: a rejecting policy turns it
// into a synchronous early rejection, identical to Submit.
TEST(StageTest, SubmitInlineRespectsPolicyRejection) {
  StageFixture f(PolicyKind::kMaxQueueLength, /*workers=*/1);
  ASSERT_TRUE(f.stage->Start().ok());
  f.busy_ns = 50 * kMillisecond;
  // Saturate the worker and the limit-2 queue, then SubmitInline.
  int rejected_now = 0;
  for (int i = 0; i < 6; ++i) {
    if (f.stage->Submit(f.MakeItem()) == Outcome::kRejected) ++rejected_now;
  }
  ASSERT_GT(rejected_now, 0);
  EXPECT_EQ(f.stage->SubmitInline(f.MakeItem()), Outcome::kRejected);
  f.stage->Stop(false);
}

// TryRunOne lets a foreign thread (a gathering broker worker) steal one
// queued item and process it in-place, preserving FIFO order.
TEST(StageTest, TryRunOneProcessesQueuedItem) {
  StageFixture f;  // Never started: no workers compete for the queue.
  EXPECT_FALSE(f.stage->TryRunOne());  // Empty queue.
  f.stage->Submit(f.MakeItem());
  f.stage->Submit(f.MakeItem());
  EXPECT_TRUE(f.stage->TryRunOne());
  EXPECT_EQ(f.handled.load(), 1);
  EXPECT_EQ(f.completed.load(), 1);
  EXPECT_TRUE(f.stage->TryRunOne());
  EXPECT_FALSE(f.stage->TryRunOne());
  EXPECT_EQ(f.completed.load(), 2);
  EXPECT_EQ(f.stage->counters().completed, 2u);
  EXPECT_EQ(f.stage->queue_state().TotalLength(), 0u);
}

TEST(StageTest, TenantThreadsThroughPolicyAndTrace) {
  // The tenant dimension rides every hop: Submit stamps item.tenant,
  // the policy's Decide sees it in the WorkKey, the PolicyContext
  // carries the registry, and the sampled trace events record it.
  QueryTypeRegistry registry(kSlo);
  const QueryTypeId type_id = *registry.Register("t", kSlo);
  TenantRegistry tenants;
  for (uint64_t e = 1; e <= 3; ++e) {
    ASSERT_TRUE(tenants.Register(e, 1.0).ok());
  }
  stats::FlightRecorder recorder;
  stats::FlightRecorder::Options trace_options;
  trace_options.sampling_period = 1;  // Trace every request.
  recorder.Configure(trace_options);
  recorder.SetEnabled(true);

  struct RecordingPolicy : AdmissionPolicy {
    explicit RecordingPolicy(std::array<std::atomic<int>, 4>* s) : seen(s) {}
    Decision Decide(WorkKey key, Nanos) override {
      if (key.tenant < seen->size()) (*seen)[key.tenant].fetch_add(1);
      return Decision::kAccept;
    }
    std::string_view name() const override { return "Recording"; }
    std::array<std::atomic<int>, 4>* seen;
  };
  std::array<std::atomic<int>, 4> seen{};
  const TenantRegistry* context_tenants = nullptr;

  Stage::Options options;
  options.name = "tenant";
  options.num_workers = 2;
  options.tenants = &tenants;
  options.recorder = &recorder;
  std::atomic<int> done{0};
  Stage stage(
      options, &registry, SystemClock::Global(),
      [&seen, &context_tenants](const PolicyContext& context)
          -> StatusOr<std::unique_ptr<AdmissionPolicy>> {
        context_tenants = context.tenants;
        return std::unique_ptr<AdmissionPolicy>(
            std::make_unique<RecordingPolicy>(&seen));
      },
      [](WorkItem&) {});
  ASSERT_TRUE(stage.init_status().ok());
  EXPECT_EQ(context_tenants, &tenants);
  ASSERT_TRUE(stage.Start().ok());

  const int kPerTenant[] = {0, 5, 3, 2};
  for (TenantId t = 1; t <= 3; ++t) {
    for (int i = 0; i < kPerTenant[t]; ++i) {
      WorkItem item;
      item.type = type_id;
      item.tenant = t;
      item.on_complete = [&done](const WorkItem&, Outcome) {
        done.fetch_add(1);
      };
      stage.Submit(std::move(item));
    }
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (done.load() < 10 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stage.Stop();
  ASSERT_EQ(done.load(), 10);
  for (TenantId t = 1; t <= 3; ++t) {
    EXPECT_EQ(seen[t].load(), kPerTenant[t]) << "tenant " << t;
  }
  // Sampled trace events carry the tenant index.
  std::string dump;
  recorder.Dump(&dump);
  for (TenantId t = 1; t <= 3; ++t) {
    EXPECT_NE(dump.find("\"tenant\":" + std::to_string(t)),
              std::string::npos)
        << "tenant " << t;
  }
}

TEST(StageBuilderTest, RequiresRegistryAndHandler) {
  StageBuilder builder;
  EXPECT_FALSE(builder.Build().ok());
  QueryTypeRegistry registry(kSlo);
  builder.SetRegistry(&registry);
  EXPECT_FALSE(builder.Build().ok());
  builder.SetHandler([](WorkItem&) {});
  EXPECT_TRUE(builder.Build().ok());
}

TEST(StageBuilderTest, PropagatesPolicyError) {
  QueryTypeRegistry registry(kSlo);
  PolicyConfig bad;
  bad.kind = PolicyKind::kMaxQueueLength;
  bad.max_queue_length.length_limit = 0;  // Invalid.
  StageBuilder builder;
  builder.SetRegistry(&registry)
      .SetHandler([](WorkItem&) {})
      .SetPolicyConfig(bad);
  EXPECT_FALSE(builder.Build().ok());
}

}  // namespace
}  // namespace bouncer::server
