// Validates the discrete-event simulator against queueing theory: with
// admission disabled, measured waits must match the Pollaczek–Khinchine
// formula for M/G/1 and the Erlang-C formula for M/M/c-like systems.

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/simulator.h"

namespace bouncer::sim {
namespace {

using workload::QueryTypeSpec;
using workload::WorkloadSpec;

const Slo kNoSlo{10 * kSecond, 20 * kSecond, 0};

SimulationConfig Config(size_t processes, double qps) {
  SimulationConfig config;
  config.parallelism = processes;
  config.arrival_rate_qps = qps;
  config.total_queries = 600'000;
  config.warmup_queries = 100'000;
  config.seed = 23;
  return config;
}

double MeasuredMeanWaitMs(const WorkloadSpec& mix,
                          const SimulationConfig& config) {
  PolicyConfig policy;
  policy.kind = PolicyKind::kAlwaysAccept;
  Simulator simulator(mix, config, policy);
  const auto result = simulator.Run();
  // rt = wt + pt; mean wait = mean rt - mean pt.
  const double service_ms = ToMillis(mix.WeightedMeanProcessingTime());
  return result.overall.rt_mean_ms - service_ms;
}

// M/D/1: deterministic 5 ms service. P-K: Wq = rho / (2 (1-rho)) * s.
TEST(AnalyticValidationTest, MD1WaitMatchesPollaczekKhinchine) {
  WorkloadSpec mix({QueryTypeSpec::FromMillis("d", 1.0, 5.0, 5.0, kNoSlo)});
  for (double rho : {0.5, 0.7, 0.85}) {
    const double lambda = rho / 0.005;  // per second.
    const double expected_ms = rho / (2.0 * (1.0 - rho)) * 5.0;
    const double measured_ms = MeasuredMeanWaitMs(mix, Config(1, lambda));
    EXPECT_NEAR(measured_ms, expected_ms, expected_ms * 0.10 + 0.05)
        << "rho=" << rho;
  }
}

// M/G/1 with lognormal service: Wq = lambda E[S^2] / (2 (1-rho)).
TEST(AnalyticValidationTest, MG1LognormalMatchesPollaczekKhinchine) {
  // Lognormal with mean 5 ms, median 4 ms.
  WorkloadSpec mix({QueryTypeSpec::FromMillis("g", 1.0, 5.0, 4.0, kNoSlo)});
  const auto params = mix.type(0).processing_time;
  // E[S^2] of a lognormal = exp(2 mu + 2 sigma^2), in ns^2.
  const double second_moment_ns2 =
      std::exp(2.0 * params.mu + 2.0 * params.sigma * params.sigma);
  const double rho = 0.75;
  const double lambda_per_sec = rho / 0.005;
  const double lambda_per_ns = lambda_per_sec / 1e9;
  const double expected_ms =
      lambda_per_ns * second_moment_ns2 / (2.0 * (1.0 - rho)) / 1e6;
  const double measured_ms =
      MeasuredMeanWaitMs(mix, Config(1, lambda_per_sec));
  EXPECT_NEAR(measured_ms, expected_ms, expected_ms * 0.12);
}

// M/D/c via the Erlang-C approximation: Wq(M/D/c) ~ Wq(M/M/c) / 2.
TEST(AnalyticValidationTest, MDcWaitNearHalfErlangC) {
  constexpr int kServers = 10;
  WorkloadSpec mix({QueryTypeSpec::FromMillis("d", 1.0, 5.0, 5.0, kNoSlo)});
  const double rho = 0.85;
  const double mu = 1.0 / 0.005;                 // Per-server rate (1/s).
  const double lambda = rho * kServers * mu;     // Offered rate.
  const double a = lambda / mu;                  // Offered load (erlangs).

  // Erlang C: P(wait) = (a^c / c!) / ((1-rho) sum_{k<c} a^k/k! + a^c/c!).
  double sum = 0.0;
  double term = 1.0;  // a^0 / 0!.
  for (int k = 0; k < kServers; ++k) {
    sum += term;
    term *= a / (k + 1);
  }
  const double p_wait = term / ((1.0 - rho) * sum + term);
  const double wq_mmc_ms = p_wait / (kServers * mu - lambda) * 1000.0;
  const double expected_ms = wq_mmc_ms / 2.0;  // M/D/c approximation.

  const double measured_ms =
      MeasuredMeanWaitMs(mix, Config(kServers, lambda));
  EXPECT_NEAR(measured_ms, expected_ms, expected_ms * 0.25);
}

// Utilization must equal rho when nothing is rejected.
TEST(AnalyticValidationTest, UtilizationEqualsOfferedLoad) {
  WorkloadSpec mix({QueryTypeSpec::FromMillis("d", 1.0, 5.0, 5.0, kNoSlo)});
  PolicyConfig policy;
  policy.kind = PolicyKind::kAlwaysAccept;
  for (double rho : {0.3, 0.6, 0.9}) {
    auto config = Config(20, rho * 20 / 0.005);
    Simulator simulator(mix, config, policy);
    const auto result = simulator.Run();
    EXPECT_NEAR(result.utilization, rho, 0.02) << "rho=" << rho;
  }
}

}  // namespace
}  // namespace bouncer::sim
