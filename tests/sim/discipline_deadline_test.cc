// Tests for the simulator's deadline handling (expiration + wasted-work
// accounting) and queue disciplines (FIFO / SJF / priority).

#include <gtest/gtest.h>

#include "src/sim/simulator.h"

namespace bouncer::sim {
namespace {

using workload::QueryTypeSpec;
using workload::WorkloadSpec;

const Slo kLooseSlo{kSecond, 2 * kSecond, 0};  // Effectively no SLO.

WorkloadSpec TwoTypeMix() {
  return WorkloadSpec(
      {QueryTypeSpec::FromMillis("cheap", 0.5, 2.0, 2.0, kLooseSlo),
       QueryTypeSpec::FromMillis("costly", 0.5, 20.0, 20.0, kLooseSlo)});
}

SimulationConfig BaseConfig(double qps) {
  SimulationConfig config;
  config.parallelism = 10;
  config.arrival_rate_qps = qps;
  config.total_queries = 40'000;
  config.warmup_queries = 5'000;
  config.seed = 5;
  return config;
}

TEST(DeadlineTest, NoDeadlineMeansNoExpiryAccounting) {
  PolicyConfig policy;
  policy.kind = PolicyKind::kAlwaysAccept;
  const auto mix = TwoTypeMix();
  auto config = BaseConfig(1.2 * mix.FullLoadQps(10));
  Simulator simulator(mix, config, policy);
  const auto result = simulator.Run();
  EXPECT_EQ(result.overall.expired, 0u);
  EXPECT_EQ(result.overall.useless, 0u);
  EXPECT_DOUBLE_EQ(result.wasted_work_fraction, 0.0);
  EXPECT_EQ(result.overall.accepted, result.overall.completed);
}

TEST(DeadlineTest, OverloadWithoutAdmissionControlWastesWork) {
  PolicyConfig policy;
  policy.kind = PolicyKind::kAlwaysAccept;
  const auto mix = TwoTypeMix();
  auto config = BaseConfig(1.3 * mix.FullLoadQps(10));
  config.deadline = 100 * kMillisecond;
  Simulator simulator(mix, config, policy);
  const auto result = simulator.Run();
  // The unbounded queue pushes waits past the deadline: queries either
  // expire unprocessed or complete uselessly.
  EXPECT_GT(result.overall.expired + result.overall.useless, 0u);
  EXPECT_GT(result.wasted_work_fraction, 0.05);
  // Conservation with expiry: accepted = completed + expired.
  EXPECT_EQ(result.overall.accepted,
            result.overall.completed + result.overall.expired);
}

TEST(DeadlineTest, BouncerAvoidsWastedWork) {
  const Slo slo{60 * kMillisecond, 90 * kMillisecond, 0};
  WorkloadSpec mix({QueryTypeSpec::FromMillis("cheap", 0.5, 2.0, 2.0, slo),
                    QueryTypeSpec::FromMillis("costly", 0.5, 20.0, 20.0,
                                              slo)});
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncer;
  auto config = BaseConfig(1.3 * mix.FullLoadQps(10));
  config.deadline = 100 * kMillisecond;
  Simulator simulator(mix, config, policy);
  const auto result = simulator.Run();
  // SLO-driven early rejection keeps queue waits far from the deadline.
  EXPECT_LT(result.wasted_work_fraction, 0.01);
  EXPECT_GT(result.overall.rejected, 0u);
}

TEST(DisciplineTest, SjfFavorsCheapQueries) {
  PolicyConfig policy;
  policy.kind = PolicyKind::kAlwaysAccept;
  const auto mix = TwoTypeMix();
  // Moderate overload so the queue is persistently non-empty.
  auto config = BaseConfig(1.15 * mix.FullLoadQps(10));

  Simulator fifo_sim(mix, config, policy);
  const auto fifo = fifo_sim.Run();

  config.discipline = QueueDiscipline::kShortestJobFirst;
  Simulator sjf_sim(mix, config, policy);
  const auto sjf = sjf_sim.Run();

  // Under SJF the cheap type's median wait collapses relative to FIFO,
  // and the costly type pays for it.
  EXPECT_LT(sjf.per_type[0].wt_p50_ms, fifo.per_type[0].wt_p50_ms * 0.5);
  EXPECT_GT(sjf.per_type[1].rt_p99_ms, fifo.per_type[1].rt_p99_ms);
}

TEST(DisciplineTest, PriorityOrdersTypes) {
  PolicyConfig policy;
  policy.kind = PolicyKind::kAlwaysAccept;
  const auto mix = TwoTypeMix();
  auto config = BaseConfig(1.15 * mix.FullLoadQps(10));
  config.discipline = QueueDiscipline::kPriority;
  config.type_priorities = {5, 1};  // Costly type served first.
  Simulator simulator(mix, config, policy);
  const auto result = simulator.Run();

  config.discipline = QueueDiscipline::kFifo;
  Simulator fifo_sim(mix, config, policy);
  const auto fifo = fifo_sim.Run();

  EXPECT_LT(result.per_type[1].wt_p50_ms, fifo.per_type[1].wt_p50_ms * 0.5);
  EXPECT_GT(result.per_type[0].wt_p50_ms, fifo.per_type[0].wt_p50_ms);
}

TEST(DisciplineTest, PriorityDefaultsToZeroWhenUnspecified) {
  PolicyConfig policy;
  policy.kind = PolicyKind::kAlwaysAccept;
  const auto mix = TwoTypeMix();
  auto config = BaseConfig(0.5 * mix.FullLoadQps(10));
  config.discipline = QueueDiscipline::kPriority;
  config.type_priorities = {};  // All default to 0 => plain FIFO.
  Simulator simulator(mix, config, policy);
  const auto result = simulator.Run();
  EXPECT_GT(result.overall.completed, 0u);
}

TEST(DisciplineTest, FifoIsStableArrivalOrder) {
  // With deterministic service and a single process, FIFO response times
  // are reproducible and ordered; this pins the heap tie-breaking.
  PolicyConfig policy;
  policy.kind = PolicyKind::kAlwaysAccept;
  WorkloadSpec mix(
      {QueryTypeSpec::FromMillis("only", 1.0, 5.0, 5.0, kLooseSlo)});
  SimulationConfig config;
  config.parallelism = 1;
  config.arrival_rate_qps = 150;  // Deterministic 5 ms service, 75% load.
  config.total_queries = 20'000;
  config.warmup_queries = 1'000;
  config.seed = 2;
  Simulator a(mix, config, policy);
  Simulator b(mix, config, policy);
  const auto ra = a.Run();
  const auto rb = b.Run();
  EXPECT_DOUBLE_EQ(ra.per_type[0].rt_p99_ms, rb.per_type[0].rt_p99_ms);
  EXPECT_EQ(ra.overall.completed, rb.overall.completed);
}

}  // namespace
}  // namespace bouncer::sim
