#include "src/sim/experiment.h"

#include <gtest/gtest.h>

namespace bouncer::sim {
namespace {

SimulationConfig TinyConfig() {
  SimulationConfig config;
  config.parallelism = 100;
  config.total_queries = 30000;
  config.warmup_queries = 5000;
  config.seed = 11;
  return config;
}

TEST(ExperimentTest, PaperLoadFactorsGrid) {
  const auto factors = PaperLoadFactors();
  ASSERT_EQ(factors.size(), 13u);
  EXPECT_DOUBLE_EQ(factors.front(), 0.9);
  EXPECT_DOUBLE_EQ(factors.back(), 1.5);
  for (size_t i = 1; i < factors.size(); ++i) {
    EXPECT_NEAR(factors[i] - factors[i - 1], 0.05, 1e-9);
  }
}

TEST(ExperimentTest, RunAveragedSumsCounters) {
  const auto workload = workload::PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kAlwaysAccept;
  auto config = TinyConfig();
  config.arrival_rate_qps = 10000;
  const auto averaged = RunAveraged(workload, config, policy, 2);
  // Two runs of 25k measured queries each.
  EXPECT_EQ(averaged.overall.received, 50000u);
  EXPECT_GT(averaged.utilization, 0.0);
}

TEST(ExperimentTest, RunAveragedSingleRunEqualsPlainRun) {
  const auto workload = workload::PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncer;
  auto config = TinyConfig();
  config.arrival_rate_qps = 18000;
  const auto averaged = RunAveraged(workload, config, policy, 1);
  Simulator simulator(workload, config, policy);
  const auto plain = simulator.Run();
  EXPECT_EQ(averaged.overall.rejected, plain.overall.rejected);
  EXPECT_DOUBLE_EQ(averaged.per_type[3].rt_p50_ms, plain.per_type[3].rt_p50_ms);
}

TEST(ExperimentTest, SweepCoversAllFactors) {
  const auto workload = workload::PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncer;
  const std::vector<double> factors = {0.9, 1.2, 1.5};
  const auto points =
      SweepLoadFactors(workload, TinyConfig(), policy, factors, 1);
  ASSERT_EQ(points.size(), 3u);
  const double full_load = workload.FullLoadQps(100);
  for (size_t i = 0; i < factors.size(); ++i) {
    EXPECT_DOUBLE_EQ(points[i].load_factor, factors[i]);
    EXPECT_NEAR(points[i].offered_qps, factors[i] * full_load, 1.0);
  }
  // Rejections grow with load (Fig. 8 shape).
  EXPECT_LE(points[0].result.overall.rejection_pct,
            points[1].result.overall.rejection_pct);
  EXPECT_LE(points[1].result.overall.rejection_pct,
            points[2].result.overall.rejection_pct);
}

}  // namespace
}  // namespace bouncer::sim
