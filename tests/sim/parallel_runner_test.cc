#include "src/sim/parallel_runner.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/sim/experiment.h"

namespace bouncer::sim {
namespace {

SimulationConfig SmallConfig() {
  SimulationConfig config;
  config.parallelism = 100;
  config.total_queries = 40000;
  config.warmup_queries = 8000;
  config.seed = 77;
  return config;
}

/// Field-exact equality: every counter and every double must match to
/// the bit (the parallel runner's contract is "bit-identical to the
/// serial path", not "statistically close").
void ExpectTypeStatsIdentical(const TypeStats& a, const TypeStats& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.useless, b.useless);
  EXPECT_EQ(a.rejection_pct, b.rejection_pct);
  EXPECT_EQ(a.rt_mean_ms, b.rt_mean_ms);
  EXPECT_EQ(a.rt_p50_ms, b.rt_p50_ms);
  EXPECT_EQ(a.rt_p90_ms, b.rt_p90_ms);
  EXPECT_EQ(a.rt_p99_ms, b.rt_p99_ms);
  EXPECT_EQ(a.pt_p50_ms, b.pt_p50_ms);
  EXPECT_EQ(a.pt_p90_ms, b.pt_p90_ms);
  EXPECT_EQ(a.wt_p50_ms, b.wt_p50_ms);
}

void ExpectResultsIdentical(const SimulationResult& a,
                            const SimulationResult& b) {
  ASSERT_EQ(a.per_type.size(), b.per_type.size());
  for (size_t i = 0; i < a.per_type.size(); ++i) {
    ExpectTypeStatsIdentical(a.per_type[i], b.per_type[i]);
  }
  ExpectTypeStatsIdentical(a.overall, b.overall);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.measured_seconds, b.measured_seconds);
  EXPECT_EQ(a.offered_qps, b.offered_qps);
  EXPECT_EQ(a.wasted_work_fraction, b.wasted_work_fraction);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(ParallelRunnerTest, DefaultJobsReadsEnvVar) {
  setenv("BOUNCER_BENCH_JOBS", "5", 1);
  EXPECT_EQ(DefaultJobs(), 5);
  setenv("BOUNCER_BENCH_JOBS", "0", 1);  // Invalid: fall back to hardware.
  EXPECT_GE(DefaultJobs(), 1);
  unsetenv("BOUNCER_BENCH_JOBS");
  EXPECT_GE(DefaultJobs(), 1);
}

TEST(ParallelRunnerTest, EmptyBatch) {
  EXPECT_TRUE(RunJobs({}, 4).empty());
}

TEST(ParallelRunnerTest, ParallelMatchesSerialBitExact) {
  const auto workload = workload::PaperSimulationWorkload();
  const double full_load = workload.FullLoadQps(100);
  std::vector<SimJob> jobs;
  for (const double factor : {0.9, 1.2, 1.5}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      SimJob job;
      job.workload = &workload;
      job.config = SmallConfig();
      job.config.arrival_rate_qps = factor * full_load;
      job.config.seed = seed;
      job.policy.kind = PolicyKind::kBouncer;
      jobs.push_back(std::move(job));
    }
  }
  const auto serial = RunJobs(jobs, 1);
  const auto parallel = RunJobs(jobs, 8);  // More threads than cores is fine.
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectResultsIdentical(serial[i], parallel[i]);
  }
}

TEST(ParallelRunnerTest, SweepLoadFactorsDeterministicAcrossJobCounts) {
  const auto workload = workload::PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncer;
  const std::vector<double> factors = {0.9, 1.1, 1.3, 1.5};

  setenv("BOUNCER_BENCH_JOBS", "1", 1);
  const auto serial =
      SweepLoadFactors(workload, SmallConfig(), policy, factors, 3);
  setenv("BOUNCER_BENCH_JOBS", "8", 1);
  const auto parallel =
      SweepLoadFactors(workload, SmallConfig(), policy, factors, 3);
  unsetenv("BOUNCER_BENCH_JOBS");

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].load_factor, parallel[i].load_factor);
    EXPECT_EQ(serial[i].offered_qps, parallel[i].offered_qps);
    ExpectResultsIdentical(serial[i].result, parallel[i].result);
  }
}

TEST(ParallelRunnerTest, SweepPolicyGridMatchesPerPolicySweeps) {
  const auto workload = workload::PaperSimulationWorkload();
  PolicyConfig bouncer;
  bouncer.kind = PolicyKind::kBouncer;
  PolicyConfig maxql;
  maxql.kind = PolicyKind::kMaxQueueLength;
  maxql.max_queue_length.length_limit = 400;
  const std::vector<double> factors = {1.0, 1.4};

  const auto grid = SweepPolicyGrid(workload, SmallConfig(),
                                    {bouncer, maxql}, factors, 2);
  ASSERT_EQ(grid.size(), 2u);
  const auto solo_bouncer =
      SweepLoadFactors(workload, SmallConfig(), bouncer, factors, 2);
  const auto solo_maxql =
      SweepLoadFactors(workload, SmallConfig(), maxql, factors, 2);
  for (size_t i = 0; i < factors.size(); ++i) {
    ExpectResultsIdentical(grid[0][i].result, solo_bouncer[i].result);
    ExpectResultsIdentical(grid[1][i].result, solo_maxql[i].result);
  }
}

TEST(SimulatorQueueTest, FifoRingMatchesHeapPathBitExact) {
  const auto workload = workload::PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncer;
  // Overload, so a deep standing queue exercises ring growth; a deadline
  // exercises the expiration-drop path through both queue structures.
  for (const double factor : {1.0, 1.5}) {
    auto config = SmallConfig();
    config.arrival_rate_qps = factor * workload.FullLoadQps(100);
    config.deadline = 200 * kMillisecond;

    Simulator ring_sim(workload, config, policy);
    const auto ring = ring_sim.Run();

    config.force_heap_queue = true;
    Simulator heap_sim(workload, config, policy);
    const auto heap = heap_sim.Run();

    ExpectResultsIdentical(ring, heap);
  }
}

TEST(SimulatorStatsTest, StreamingSummaryTracksExactPercentiles) {
  const auto workload = workload::PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncer;
  auto config = SmallConfig();
  config.arrival_rate_qps = 1.2 * workload.FullLoadQps(100);

  Simulator exact_sim(workload, config, policy);
  const auto exact = exact_sim.Run();

  config.stats_mode = StatsMode::kStreamingSummary;
  Simulator streaming_sim(workload, config, policy);
  const auto streaming = streaming_sim.Run();

  // Counters don't depend on the stats mode at all.
  EXPECT_EQ(exact.overall.received, streaming.overall.received);
  EXPECT_EQ(exact.overall.rejected, streaming.overall.rejected);
  EXPECT_EQ(exact.overall.completed, streaming.overall.completed);
  EXPECT_EQ(exact.utilization, streaming.utilization);

  // Percentiles agree within the histogram's ~3% relative-error bound
  // (plus a little slack for nearest-rank vs bucket-midpoint semantics).
  const auto near = [](double got, double want) {
    const double tol = 0.05 * want + 0.05;
    EXPECT_NEAR(got, want, tol);
  };
  near(streaming.overall.rt_p50_ms, exact.overall.rt_p50_ms);
  near(streaming.overall.rt_p90_ms, exact.overall.rt_p90_ms);
  near(streaming.overall.rt_p99_ms, exact.overall.rt_p99_ms);
  near(streaming.overall.rt_mean_ms, exact.overall.rt_mean_ms);
  near(streaming.overall.pt_p50_ms, exact.overall.pt_p50_ms);
  for (size_t i = 0; i < exact.per_type.size(); ++i) {
    near(streaming.per_type[i].rt_p50_ms, exact.per_type[i].rt_p50_ms);
    near(streaming.per_type[i].rt_p90_ms, exact.per_type[i].rt_p90_ms);
    near(streaming.per_type[i].pt_p50_ms, exact.per_type[i].pt_p50_ms);
    near(streaming.per_type[i].wt_p50_ms, exact.per_type[i].wt_p50_ms);
  }
}

TEST(SimulatorStatsTest, NoneModeKeepsCountersDropsSeries) {
  const auto workload = workload::PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kAlwaysAccept;
  auto config = SmallConfig();
  config.arrival_rate_qps = 0.9 * workload.FullLoadQps(100);

  Simulator exact_sim(workload, config, policy);
  const auto exact = exact_sim.Run();
  config.stats_mode = StatsMode::kNone;
  Simulator none_sim(workload, config, policy);
  const auto none = none_sim.Run();

  EXPECT_EQ(none.overall.received, exact.overall.received);
  EXPECT_EQ(none.overall.completed, exact.overall.completed);
  EXPECT_EQ(none.events_processed, exact.events_processed);
  EXPECT_EQ(none.overall.rt_p50_ms, 0.0);
  EXPECT_GT(exact.overall.rt_p50_ms, 0.0);
}

}  // namespace
}  // namespace bouncer::sim
