#include "src/sim/simulator.h"

#include <gtest/gtest.h>

namespace bouncer::sim {
namespace {

using workload::PaperSimulationWorkload;
using workload::QueryTypeSpec;
using workload::WorkloadSpec;

SimulationConfig SmallConfig(double qps) {
  SimulationConfig config;
  config.parallelism = 100;
  config.arrival_rate_qps = qps;
  config.total_queries = 60000;
  config.warmup_queries = 10000;
  config.seed = 7;
  return config;
}

WorkloadSpec SingleTypeWorkload(double mean_ms, double median_ms) {
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  return WorkloadSpec(
      {QueryTypeSpec::FromMillis("only", 1.0, mean_ms, median_ms, slo)});
}

TEST(SimulatorTest, AlwaysAcceptLightLoadNoQueueing) {
  // M/M/100-ish at 30% load: response ~ service, no rejections.
  const auto workload = SingleTypeWorkload(5.0, 5.0);  // Deterministic 5 ms.
  PolicyConfig policy;
  policy.kind = PolicyKind::kAlwaysAccept;
  const double full_load = workload.FullLoadQps(100);
  Simulator simulator(workload, SmallConfig(0.3 * full_load), policy);
  const auto result = simulator.Run();
  EXPECT_EQ(result.overall.rejected, 0u);
  EXPECT_EQ(result.overall.received,
            result.overall.accepted);
  EXPECT_NEAR(result.per_type[0].rt_p50_ms, 5.0, 0.5);
  EXPECT_NEAR(result.utilization, 0.3, 0.05);
}

TEST(SimulatorTest, ConservationOfQueries) {
  const auto workload = PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncer;
  Simulator simulator(workload, SmallConfig(18000), policy);
  const auto result = simulator.Run();
  EXPECT_EQ(result.overall.received,
            result.overall.accepted + result.overall.rejected);
  // Every measured accepted query eventually completes (we drain).
  EXPECT_EQ(result.overall.accepted, result.overall.completed);
  EXPECT_GT(result.overall.received, 40000u);
}

TEST(SimulatorTest, DeterministicForSeed) {
  const auto workload = PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncer;
  Simulator a(workload, SmallConfig(18000), policy);
  Simulator b(workload, SmallConfig(18000), policy);
  const auto ra = a.Run();
  const auto rb = b.Run();
  EXPECT_EQ(ra.overall.rejected, rb.overall.rejected);
  EXPECT_DOUBLE_EQ(ra.per_type[3].rt_p50_ms, rb.per_type[3].rt_p50_ms);
}

TEST(SimulatorTest, SeedChangesOutcome) {
  const auto workload = PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncer;
  auto config_b = SmallConfig(18000);
  config_b.seed = 8;
  Simulator a(workload, SmallConfig(18000), policy);
  Simulator b(workload, config_b, policy);
  EXPECT_NE(a.Run().overall.rejected, b.Run().overall.rejected);
}

TEST(SimulatorTest, OverloadSaturatesUtilization) {
  const auto workload = PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncer;
  const double full_load = workload.FullLoadQps(100);
  Simulator simulator(workload, SmallConfig(1.3 * full_load), policy);
  const auto result = simulator.Run();
  EXPECT_GT(result.utilization, 0.95);
  EXPECT_LE(result.utilization, 1.001);
}

TEST(SimulatorTest, BouncerKeepsSlowTypeNearSlo) {
  const auto workload = PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncer;
  const double full_load = workload.FullLoadQps(100);
  auto config = SmallConfig(1.3 * full_load);
  // Exclude the cold-start transient: the first histogram publication
  // happens one swap interval (1 s of simulated time) in, during which
  // a backlog builds that takes a moment to drain.
  config.total_queries = 120000;
  config.warmup_queries = 50000;
  Simulator simulator(workload, config, policy);
  const auto result = simulator.Run();
  // Paper Fig. 6: Bouncer holds rt_p50 of slow queries at/under the SLO
  // (18 ms) under overload; allow a small margin for estimate error.
  EXPECT_LT(result.per_type[3].rt_p50_ms, 20.0);
  // And slow queries are the ones being rejected (Table 3).
  EXPECT_GT(result.per_type[3].rejection_pct, 20.0);
  EXPECT_EQ(result.per_type[0].rejected, 0u);
}

TEST(SimulatorTest, MaxQlPlateausAboveSlo) {
  const auto workload = PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kMaxQueueLength;
  policy.max_queue_length.length_limit = 400;
  const double full_load = workload.FullLoadQps(100);
  Simulator simulator(workload, SmallConfig(1.3 * full_load), policy);
  const auto result = simulator.Run();
  // Paper Fig. 6: MaxQL's rt_p50 plateaus around ~40 ms (above SLO).
  EXPECT_GT(result.per_type[3].rt_p50_ms, 25.0);
  EXPECT_LT(result.per_type[3].rt_p50_ms, 60.0);
}

TEST(SimulatorTest, AcceptFractionCapsUtilization) {
  const auto workload = PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kAcceptFraction;
  policy.accept_fraction.max_utilization = 0.95;
  // Scale the moving-average windows to the length of this short run
  // (the paper's D = 60 s assumes minute-scale runs).
  policy.accept_fraction.window_duration = kSecond;
  policy.accept_fraction.window_step = 50 * kMillisecond;
  policy.accept_fraction.update_interval = 50 * kMillisecond;
  const double full_load = workload.FullLoadQps(100);
  auto config = SmallConfig(1.4 * full_load);
  // The queue backlog accumulated before the moving averages ramp drains
  // at only (1 - MaxUtil) x capacity, so warm-up must cover ~10 s of
  // simulated time before utilization settles at the threshold.
  config.total_queries = 450000;
  config.warmup_queries = 280000;
  Simulator simulator(workload, config, policy);
  const auto result = simulator.Run();
  // Paper Fig. 7: AcceptFraction is the one policy pinned near its
  // utilization threshold.
  EXPECT_LT(result.utilization, 0.99);
  EXPECT_GT(result.utilization, 0.85);
}

TEST(SimulatorTest, TickCallbackFires) {
  const auto workload = PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncer;
  auto config = SmallConfig(15000);
  Simulator simulator(workload, config, policy);
  int ticks = 0;
  Nanos last = 0;
  simulator.SetTickCallback(kSecond, [&](Nanos now) {
    ++ticks;
    EXPECT_GT(now, last);
    last = now;
  });
  simulator.Run();
  // 60k queries at 15k qps ~ 4 s of simulated time -> several ticks.
  EXPECT_GE(ticks, 3);
}

TEST(SimulatorTest, LiveTypeCountsDuringTicks) {
  const auto workload = PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncer;
  Simulator simulator(workload, SmallConfig(20000), policy);
  bool saw_measured_traffic = false;
  simulator.SetTickCallback(kSecond, [&](Nanos) {
    const auto [received, rejected] = simulator.LiveTypeCounts(3);
    if (received > 0) saw_measured_traffic = true;
    EXPECT_LE(rejected, received);
  });
  simulator.Run();
  EXPECT_TRUE(saw_measured_traffic);
}

TEST(SimulatorTest, WarmupExcludedFromCounters) {
  const auto workload = PaperSimulationWorkload();
  PolicyConfig policy;
  policy.kind = PolicyKind::kAlwaysAccept;
  auto config = SmallConfig(15000);
  config.total_queries = 30000;
  config.warmup_queries = 20000;
  Simulator simulator(workload, config, policy);
  const auto result = simulator.Run();
  EXPECT_EQ(result.overall.received, 10000u);
}

}  // namespace
}  // namespace bouncer::sim
