#include "src/stats/dual_histogram.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace bouncer::stats {
namespace {

DualHistogram::Options TestOptions(Nanos interval = kSecond,
                                   uint64_t min_samples = 1) {
  return DualHistogram::Options{interval, min_samples};
}

TEST(DualHistogramTest, EmptyBeforeFirstSwap) {
  DualHistogram h(TestOptions());
  h.Record(5 * kMillisecond);
  EXPECT_TRUE(h.ReadSummary().empty());  // Not yet published.
}

TEST(DualHistogramTest, SamplesVisibleAfterSwap) {
  DualHistogram h(TestOptions());
  h.Record(5 * kMillisecond);
  h.Record(7 * kMillisecond);
  h.ForceSwap();
  const HistogramSummary s = h.ReadSummary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.mean, 6 * kMillisecond);
}

TEST(DualHistogramTest, MaybeSwapRespectsInterval) {
  DualHistogram h(TestOptions(kSecond));
  h.Record(100);
  EXPECT_FALSE(h.MaybeSwap(10));  // First call arms the timer.
  EXPECT_FALSE(h.MaybeSwap(kSecond - 1));
  EXPECT_TRUE(h.MaybeSwap(kSecond + 10));  // First period elapsed.
  EXPECT_FALSE(h.MaybeSwap(kSecond + 11));
  EXPECT_FALSE(h.MaybeSwap(2 * kSecond + 9));
  EXPECT_TRUE(h.MaybeSwap(2 * kSecond + 11));
}

TEST(DualHistogramTest, SwapRotatesBuffers) {
  DualHistogram h(TestOptions());
  h.Record(1 * kMillisecond);
  h.ForceSwap();
  h.Record(9 * kMillisecond);
  h.ForceSwap();
  // Second window only.
  EXPECT_EQ(h.ReadSummary().mean, 9 * kMillisecond);
  h.ForceSwap();
  // Third window is empty; retention keeps the last published summary.
  EXPECT_EQ(h.ReadSummary().mean, 9 * kMillisecond);
}

TEST(DualHistogramTest, StaleRetentionBelowMinSamples) {
  DualHistogram h(TestOptions(kSecond, /*min_samples=*/10));
  for (int i = 0; i < 20; ++i) h.Record(2 * kMillisecond);
  h.ForceSwap();
  EXPECT_EQ(h.ReadSummary().count, 20u);
  // Only 3 samples this window: below threshold, previous summary stays.
  h.Record(50 * kMillisecond);
  h.Record(50 * kMillisecond);
  h.Record(50 * kMillisecond);
  h.ForceSwap();
  const HistogramSummary s = h.ReadSummary();
  EXPECT_EQ(s.count, 20u);
  EXPECT_EQ(s.mean, 2 * kMillisecond);
}

TEST(DualHistogramTest, PublishesWhenAtThreshold) {
  DualHistogram h(TestOptions(kSecond, /*min_samples=*/3));
  h.Record(1);
  h.Record(1);
  h.Record(1);
  h.ForceSwap();
  EXPECT_EQ(h.ReadSummary().count, 3u);
}

TEST(DualHistogramTest, ActiveCountTracksCurrentBuffer) {
  DualHistogram h(TestOptions());
  h.Record(1);
  h.Record(1);
  EXPECT_EQ(h.ActiveCount(), 2u);
  h.ForceSwap();
  EXPECT_EQ(h.ActiveCount(), 0u);
}

TEST(DualHistogramTest, SwapCountIncrements) {
  DualHistogram h(TestOptions());
  EXPECT_EQ(h.SwapCount(), 0u);
  h.ForceSwap();
  h.ForceSwap();
  EXPECT_EQ(h.SwapCount(), 2u);
}

TEST(DualHistogramTest, OnlyOneThreadWinsTimedSwap) {
  DualHistogram h(TestOptions(kSecond));
  h.Record(1);
  EXPECT_FALSE(h.MaybeSwap(0));  // Arm the timer.
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      if (h.MaybeSwap(5 * kSecond)) wins.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wins.load(), 1);
}

TEST(DualHistogramTest, ConcurrentRecordAndRead) {
  DualHistogram h(TestOptions(kMillisecond));
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Nanos now = 0;
    while (!stop.load()) {
      for (int i = 0; i < 100; ++i) h.Record(3 * kMillisecond);
      now += kMillisecond;
      h.MaybeSwap(now);
    }
  });
  for (int i = 0; i < 2000; ++i) {
    const HistogramSummary s = h.ReadSummary();
    if (s.count > 0) {
      // A consistent summary of identical samples: mean == p50 bucket-ish.
      EXPECT_EQ(s.mean, 3 * kMillisecond);
    }
  }
  stop.store(true);
  writer.join();
}

// Several reader threads hammering ReadSummary() while one dedicated
// swapper rotates buffers (and a recorder keeps feeding samples): every
// summary observed must be internally consistent — identical samples, so
// any published summary has the one true mean. Exercises the seqlock
// publication path against the swap path specifically.
TEST(DualHistogramTest, ConcurrentReadersVersusSwapper) {
  DualHistogram h(TestOptions(kMillisecond));
  std::atomic<bool> stop{false};
  std::thread recorder([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 64; ++i) h.Record(3 * kMillisecond);
    }
  });
  std::thread swapper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      h.ForceSwap();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 30'000; ++i) {
        const HistogramSummary s = h.ReadSummary();
        if (s.count > 0) {
          // Identical samples: any published summary must stay near the
          // one true value. A straggler Record() racing the swap can
          // skew count vs sum by a few samples (inherent to the
          // dual-buffer design), but a torn or corrupted summary would
          // land far outside these bounds.
          ASSERT_GE(s.mean, 2 * kMillisecond);
          ASSERT_LE(s.mean, 4 * kMillisecond);
          // p50 interpolates within the bucket by rank, so it can move
          // between windows — but never outside the sample's bucket.
          ASSERT_GE(s.p50, 2 * kMillisecond);
          ASSERT_LE(s.p50, 4 * kMillisecond);
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  recorder.join();
  swapper.join();
  EXPECT_GT(h.SwapCount(), 0u);
}

// ForceSwap from many threads at once must keep the swap counter exact
// and the pacing timer race-free (regression: the timer push-out used to
// be a racy read-modify-write).
TEST(DualHistogramTest, ConcurrentForceSwapKeepsCountExact) {
  DualHistogram h(TestOptions(kSecond));
  constexpr int kThreads = 4;
  constexpr uint64_t kSwapsPerThread = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kSwapsPerThread; ++i) h.ForceSwap();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.SwapCount(), kThreads * kSwapsPerThread);
}

}  // namespace
}  // namespace bouncer::stats
