#include "src/stats/dual_histogram.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace bouncer::stats {
namespace {

DualHistogram::Options TestOptions(Nanos interval = kSecond,
                                   uint64_t min_samples = 1) {
  return DualHistogram::Options{interval, min_samples};
}

TEST(DualHistogramTest, EmptyBeforeFirstSwap) {
  DualHistogram h(TestOptions());
  h.Record(5 * kMillisecond);
  EXPECT_TRUE(h.ReadSummary().empty());  // Not yet published.
}

TEST(DualHistogramTest, SamplesVisibleAfterSwap) {
  DualHistogram h(TestOptions());
  h.Record(5 * kMillisecond);
  h.Record(7 * kMillisecond);
  h.ForceSwap();
  const HistogramSummary s = h.ReadSummary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.mean, 6 * kMillisecond);
}

TEST(DualHistogramTest, MaybeSwapRespectsInterval) {
  DualHistogram h(TestOptions(kSecond));
  h.Record(100);
  EXPECT_FALSE(h.MaybeSwap(10));  // First call arms the timer.
  EXPECT_FALSE(h.MaybeSwap(kSecond - 1));
  EXPECT_TRUE(h.MaybeSwap(kSecond + 10));  // First period elapsed.
  EXPECT_FALSE(h.MaybeSwap(kSecond + 11));
  EXPECT_FALSE(h.MaybeSwap(2 * kSecond + 9));
  EXPECT_TRUE(h.MaybeSwap(2 * kSecond + 11));
}

TEST(DualHistogramTest, SwapRotatesBuffers) {
  DualHistogram h(TestOptions());
  h.Record(1 * kMillisecond);
  h.ForceSwap();
  h.Record(9 * kMillisecond);
  h.ForceSwap();
  // Second window only.
  EXPECT_EQ(h.ReadSummary().mean, 9 * kMillisecond);
  h.ForceSwap();
  // Third window is empty; retention keeps the last published summary.
  EXPECT_EQ(h.ReadSummary().mean, 9 * kMillisecond);
}

TEST(DualHistogramTest, StaleRetentionBelowMinSamples) {
  DualHistogram h(TestOptions(kSecond, /*min_samples=*/10));
  for (int i = 0; i < 20; ++i) h.Record(2 * kMillisecond);
  h.ForceSwap();
  EXPECT_EQ(h.ReadSummary().count, 20u);
  // Only 3 samples this window: below threshold, previous summary stays.
  h.Record(50 * kMillisecond);
  h.Record(50 * kMillisecond);
  h.Record(50 * kMillisecond);
  h.ForceSwap();
  const HistogramSummary s = h.ReadSummary();
  EXPECT_EQ(s.count, 20u);
  EXPECT_EQ(s.mean, 2 * kMillisecond);
}

TEST(DualHistogramTest, PublishesWhenAtThreshold) {
  DualHistogram h(TestOptions(kSecond, /*min_samples=*/3));
  h.Record(1);
  h.Record(1);
  h.Record(1);
  h.ForceSwap();
  EXPECT_EQ(h.ReadSummary().count, 3u);
}

TEST(DualHistogramTest, ActiveCountTracksCurrentBuffer) {
  DualHistogram h(TestOptions());
  h.Record(1);
  h.Record(1);
  EXPECT_EQ(h.ActiveCount(), 2u);
  h.ForceSwap();
  EXPECT_EQ(h.ActiveCount(), 0u);
}

TEST(DualHistogramTest, SwapCountIncrements) {
  DualHistogram h(TestOptions());
  EXPECT_EQ(h.SwapCount(), 0u);
  h.ForceSwap();
  h.ForceSwap();
  EXPECT_EQ(h.SwapCount(), 2u);
}

TEST(DualHistogramTest, OnlyOneThreadWinsTimedSwap) {
  DualHistogram h(TestOptions(kSecond));
  h.Record(1);
  EXPECT_FALSE(h.MaybeSwap(0));  // Arm the timer.
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      if (h.MaybeSwap(5 * kSecond)) wins.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wins.load(), 1);
}

TEST(DualHistogramTest, ConcurrentRecordAndRead) {
  DualHistogram h(TestOptions(kMillisecond));
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Nanos now = 0;
    while (!stop.load()) {
      for (int i = 0; i < 100; ++i) h.Record(3 * kMillisecond);
      now += kMillisecond;
      h.MaybeSwap(now);
    }
  });
  for (int i = 0; i < 2000; ++i) {
    const HistogramSummary s = h.ReadSummary();
    if (s.count > 0) {
      // A consistent summary of identical samples: mean == p50 bucket-ish.
      EXPECT_EQ(s.mean, 3 * kMillisecond);
    }
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace bouncer::stats
