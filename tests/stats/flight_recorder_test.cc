#include "src/stats/flight_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace bouncer::stats {
namespace {

TraceEvent Event(uint64_t id, TraceEventKind kind = TraceEventKind::kAdmission) {
  TraceEvent event;
  event.ts = static_cast<Nanos>(id);
  event.id = id;
  event.kind = static_cast<uint8_t>(kind);
  return event;
}

size_t CountLines(const std::string& dump) {
  size_t lines = 0;
  for (const char c : dump) {
    if (c == '\n') ++lines;
  }
  return lines;
}

TEST(FlightRecorderTest, StartsDisabledAndSamplesNothing) {
  FlightRecorder recorder;
  EXPECT_FALSE(recorder.enabled());
  EXPECT_FALSE(recorder.ShouldSample(0));
  recorder.SetEnabled(true);
  FlightRecorder::Options options;
  options.sampling_period = 1;
  recorder.Configure(options);
  EXPECT_TRUE(recorder.ShouldSample(12345));
}

TEST(FlightRecorderTest, SamplingIsDeterministicForFixedSeed) {
  // The sampling predicate is a pure function of (id, seed, period):
  // re-running with the same seed traces the same requests.
  constexpr uint64_t kSeed = 0xabcdef12345678ull;
  constexpr uint32_t kPeriod = 64;
  size_t sampled = 0;
  for (uint64_t id = 0; id < 100'000; ++id) {
    const bool first = FlightRecorder::SampleDecision(id, kSeed, kPeriod);
    const bool second = FlightRecorder::SampleDecision(id, kSeed, kPeriod);
    EXPECT_EQ(first, second);
    if (first) ++sampled;
  }
  // The hash spreads ids evenly: expect ~1/64 within a loose band.
  EXPECT_GT(sampled, 100'000 / kPeriod / 2);
  EXPECT_LT(sampled, 100'000 / kPeriod * 2);
  // A different seed selects a different (but equally deterministic) set.
  size_t overlap = 0;
  for (uint64_t id = 0; id < 100'000; ++id) {
    if (FlightRecorder::SampleDecision(id, kSeed, kPeriod) &&
        FlightRecorder::SampleDecision(id, kSeed + 1, kPeriod)) {
      ++overlap;
    }
  }
  EXPECT_LT(overlap, sampled);
  // Period 1 samples everything regardless of seed.
  EXPECT_TRUE(FlightRecorder::SampleDecision(77, kSeed, 1));
}

TEST(FlightRecorderTest, DumpRoundTripsRecordedFields) {
  FlightRecorder recorder;
  TraceEvent event;
  event.ts = 123456789;
  event.id = 42;
  event.arg0 = -5;
  event.arg1 = 99;
  event.loc = 3;
  event.tenant = 17;
  event.type = 11;
  event.kind = static_cast<uint8_t>(TraceEventKind::kNetParse);
  event.reason = 2;
  recorder.Record(event);
  std::string dump;
  EXPECT_EQ(recorder.Dump(&dump), 1u);
  EXPECT_EQ(dump,
            "{\"ts\":123456789,\"id\":42,\"kind\":\"net_parse\",\"type\":11,"
            "\"tenant\":17,\"reason\":2,\"loc\":3,\"arg0\":-5,\"arg1\":99,"
            "\"ring\":0}\n");
}

TEST(FlightRecorderTest, RingKeepsNewestEventsOnWraparound) {
  FlightRecorder::Options options;
  options.ring_capacity = 64;
  FlightRecorder recorder(options);
  for (uint64_t id = 0; id < 1000; ++id) recorder.Record(Event(id));
  std::string dump;
  EXPECT_EQ(recorder.Dump(&dump), 64u);
  // Oldest retained first, and exactly the newest 64 survive the wrap.
  EXPECT_NE(dump.find("\"id\":936,"), std::string::npos);
  EXPECT_NE(dump.find("\"id\":999,"), std::string::npos);
  EXPECT_EQ(dump.find("\"id\":935,"), std::string::npos);
  EXPECT_LT(dump.find("\"id\":936,"), dump.find("\"id\":999,"));

  recorder.Reset();
  dump.clear();
  EXPECT_EQ(recorder.Dump(&dump), 0u);
}

TEST(FlightRecorderTest, ConcurrentWritersGetPrivateRingsAndCleanDumps) {
  // Each writer thread hammers its own ring far past wraparound while a
  // dumper snapshots concurrently: dumps must never tear (every line is
  // a complete JSON object with a plausible id) and the final dump holds
  // exactly one ring per writer with that writer's newest events.
  constexpr size_t kWriters = 4;
  constexpr uint64_t kEventsPerWriter = 20'000;
  constexpr size_t kCapacity = 256;
  FlightRecorder::Options options;
  options.ring_capacity = kCapacity;
  FlightRecorder recorder(options);

  std::atomic<bool> stop{false};
  std::thread dumper([&recorder, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      std::string dump;
      const size_t written = recorder.Dump(&dump);
      // Every retained line is a complete object, never torn.
      EXPECT_EQ(CountLines(dump), written);
      EXPECT_LE(written, kWriters * kCapacity);
    }
  });

  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (uint64_t i = 0; i < kEventsPerWriter; ++i) {
        // id encodes (writer, seq) so the final dump is checkable.
        recorder.Record(Event((static_cast<uint64_t>(w) << 32) | i));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  dumper.join();

  EXPECT_EQ(recorder.num_rings(), kWriters);
  std::string dump;
  EXPECT_EQ(recorder.Dump(&dump), kWriters * kCapacity);
  for (size_t w = 0; w < kWriters; ++w) {
    // Each writer's last event survived its ring's many wraps.
    const uint64_t last = (static_cast<uint64_t>(w) << 32) |
                          (kEventsPerWriter - 1);
    EXPECT_NE(dump.find("\"id\":" + std::to_string(last) + ","),
              std::string::npos);
  }
}

TEST(FlightRecorderTest, DumpToFileWritesJsonl) {
  FlightRecorder recorder;
  recorder.Record(Event(7));
  recorder.Record(Event(8));
  const char* path = "flight_recorder_test_dump.jsonl";
  ASSERT_TRUE(recorder.DumpToFile(path));
  std::FILE* f = std::fopen(path, "r");
  ASSERT_NE(f, nullptr);
  char buf[512];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path);
  const std::string contents(buf, n);
  EXPECT_EQ(CountLines(contents), 2u);
  EXPECT_NE(contents.find("\"id\":7,"), std::string::npos);
  EXPECT_NE(contents.find("\"id\":8,"), std::string::npos);
}

}  // namespace
}  // namespace bouncer::stats
