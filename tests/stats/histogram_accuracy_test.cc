// Property tests: the bucketed histogram's percentiles must agree with
// exact sample percentiles within the bucket scheme's relative-error
// bound, across qualitatively different distributions.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/stats/histogram.h"
#include "src/stats/summary.h"
#include "src/util/rng.h"

namespace bouncer::stats {
namespace {

struct DistributionCase {
  std::string name;
  // Draws one sample in nanoseconds.
  Nanos (*draw)(Rng&);
};

Nanos DrawExponential(Rng& rng) {
  return static_cast<Nanos>(rng.NextExponential(5e6));
}
Nanos DrawLognormal(Rng& rng) {
  return static_cast<Nanos>(rng.NextLogNormal(15.0, 1.0));
}
Nanos DrawUniform(Rng& rng) {
  return static_cast<Nanos>(rng.NextBounded(100 * kMillisecond));
}
Nanos DrawBimodal(Rng& rng) {
  return rng.NextBernoulli(0.8)
             ? static_cast<Nanos>(1 * kMillisecond + rng.NextBounded(100000))
             : static_cast<Nanos>(80 * kMillisecond + rng.NextBounded(100000));
}
Nanos DrawHeavyTail(Rng& rng) {
  // Pareto-ish: x = scale / u^(1/alpha), alpha = 1.5.
  double u = rng.NextDouble();
  if (u < 1e-12) u = 1e-12;
  return static_cast<Nanos>(100000.0 / std::pow(u, 1.0 / 1.5));
}

class HistogramAccuracy : public ::testing::TestWithParam<DistributionCase> {
};

TEST_P(HistogramAccuracy, PercentilesMatchExactSamples) {
  const auto& param = GetParam();
  Histogram histogram;
  SampleSummary exact;
  Rng rng(0xabcdef);
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) {
    const Nanos v = param.draw(rng);
    histogram.Record(v);
    exact.Add(static_cast<double>(v));
  }
  for (double q : {0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double approx = static_cast<double>(histogram.Percentile(q));
    const double truth = exact.Percentile(q);
    // Bucket relative error bound is 1/kSubCount ~ 3.1%; allow a bit of
    // slack for quantile interpolation differences.
    EXPECT_NEAR(approx, truth, truth * 0.04 + 2.0)
        << param.name << " q=" << q;
  }
}

TEST_P(HistogramAccuracy, MeanIsExact) {
  const auto& param = GetParam();
  Histogram histogram;
  SampleSummary exact;
  Rng rng(0x1234);
  for (int i = 0; i < 50'000; ++i) {
    const Nanos v = param.draw(rng);
    histogram.Record(v);
    exact.Add(static_cast<double>(v));
  }
  EXPECT_NEAR(static_cast<double>(histogram.Mean()), exact.Mean(), 1.0)
      << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, HistogramAccuracy,
    ::testing::Values(DistributionCase{"exponential", DrawExponential},
                      DistributionCase{"lognormal", DrawLognormal},
                      DistributionCase{"uniform", DrawUniform},
                      DistributionCase{"bimodal", DrawBimodal},
                      DistributionCase{"heavy_tail", DrawHeavyTail}),
    [](const ::testing::TestParamInfo<DistributionCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace bouncer::stats
