#include "src/stats/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/util/rng.h"

namespace bouncer::stats {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Mean(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_TRUE(h.MakeSummary().empty());
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Record(5 * kMillisecond);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Mean(), 5 * kMillisecond);
  // Percentile is bucket-approximate: within the ~3% bucket width.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)),
              static_cast<double>(5 * kMillisecond), 0.05 * 5 * kMillisecond);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.Record(100);
  h.Record(200);
  h.Record(600);
  EXPECT_EQ(h.Mean(), 300);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Mean(), 0);
  EXPECT_EQ(h.Percentile(1.0), 0);
}

TEST(HistogramTest, HugeValuesClampToMax) {
  Histogram h;
  h.Record(Histogram::kMaxValue * 4);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_LE(h.Percentile(1.0), Histogram::kMaxValue);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(100);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Mean(), 0);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    h.Record(static_cast<Nanos>(rng.NextExponential(1e6)));
  }
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.9));
  EXPECT_LE(h.Percentile(0.9), h.Percentile(0.99));
  EXPECT_LE(h.Percentile(0.99), h.Percentile(1.0));
}

TEST(HistogramTest, SummaryMatchesDirectQueries) {
  Histogram h;
  Rng rng(2);
  for (int i = 0; i < 50000; ++i) {
    h.Record(static_cast<Nanos>(rng.NextLogNormal(14.0, 1.0)));
  }
  const HistogramSummary s = h.MakeSummary();
  EXPECT_EQ(s.count, 50000u);
  EXPECT_EQ(s.mean, h.Mean());
  EXPECT_EQ(s.p50, h.Percentile(0.5));
  EXPECT_EQ(s.p90, h.Percentile(0.9));
  EXPECT_EQ(s.p99, h.Percentile(0.99));
}

TEST(HistogramTest, UniformPercentileAccuracy) {
  // Values 1..100000: p50 should be ~50000 within bucket error.
  Histogram h;
  for (Nanos v = 1; v <= 100000; ++v) h.Record(v);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 50000.0, 2000.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.9)), 90000.0, 3000.0);
}

TEST(HistogramTest, ConcurrentRecords) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(1000 + t);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads * kPerThread));
}

// --- Bucket indexing properties ---

TEST(HistogramBucketTest, ExactForSmallValues) {
  for (Nanos v = 0; v < Histogram::kSubCount; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::BucketLowerBound(static_cast<int>(v)), v);
  }
}

class BucketProperty : public ::testing::TestWithParam<Nanos> {};

TEST_P(BucketProperty, IndexInRange) {
  const int index = Histogram::BucketIndex(GetParam());
  EXPECT_GE(index, 0);
  EXPECT_LT(index, Histogram::kBucketCount);
}

TEST_P(BucketProperty, ValueWithinItsBucketBounds) {
  const Nanos v = GetParam();
  const int index = Histogram::BucketIndex(v);
  EXPECT_LE(Histogram::BucketLowerBound(index), v);
  if (index + 1 < Histogram::kBucketCount) {
    EXPECT_GT(Histogram::BucketLowerBound(index + 1), v);
  }
}

TEST_P(BucketProperty, MidpointRelativeErrorBounded) {
  const Nanos v = GetParam();
  if (v == 0) return;
  const Nanos mid = Histogram::BucketMidpoint(Histogram::BucketIndex(v));
  const double rel =
      std::abs(static_cast<double>(mid - v)) / static_cast<double>(v);
  EXPECT_LE(rel, 1.0 / Histogram::kSubCount);  // <= ~3.1%.
}

INSTANTIATE_TEST_SUITE_P(
    RepresentativeValues, BucketProperty,
    ::testing::Values<Nanos>(0, 1, 31, 32, 33, 63, 64, 100, 1000, 4095, 4096,
                             65535, 1'000'000, 999'999'937, 5'000'000'000LL,
                             Histogram::kMaxValue - 1, Histogram::kMaxValue));

TEST(HistogramBucketTest, IndexIsMonotone) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const Nanos a = static_cast<Nanos>(rng.NextBounded(Histogram::kMaxValue));
    const Nanos b = a + static_cast<Nanos>(rng.NextBounded(1 << 20));
    EXPECT_LE(Histogram::BucketIndex(a), Histogram::BucketIndex(b))
        << "a=" << a << " b=" << b;
  }
}

TEST(HistogramBucketTest, LowerBoundsStrictlyIncrease) {
  for (int i = 1; i < Histogram::kBucketCount; ++i) {
    EXPECT_LT(Histogram::BucketLowerBound(i - 1),
              Histogram::BucketLowerBound(i))
        << "at index " << i;
  }
}

TEST(HistogramBucketTest, LowerBoundRoundTrips) {
  for (int i = 0; i < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(i)), i);
  }
}

}  // namespace
}  // namespace bouncer::stats
