#include "src/stats/metric_registry.h"

#include <gtest/gtest.h>

#include <string>

namespace bouncer::stats {
namespace {

TEST(MetricRegistryTest, GetReturnsStablePointers) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("a.count");
  c->Increment();
  c->Increment(2);
  EXPECT_EQ(registry.GetCounter("a.count"), c);
  EXPECT_EQ(c->Value(), 3u);

  Gauge* g = registry.GetGauge("a.gauge");
  g->Set(-7);
  EXPECT_EQ(registry.GetGauge("a.gauge"), g);
  EXPECT_EQ(g->Value(), -7);

  Histogram* h = registry.GetHistogram("a.hist");
  h->Record(kMillisecond);
  EXPECT_EQ(registry.GetHistogram("a.hist"), h);
}

TEST(MetricRegistryTest, SnapshotIsNameSorted) {
  MetricRegistry registry;
  registry.GetCounter("zeta")->Increment();
  registry.GetCounter("alpha")->Increment();
  registry.GetCounter("mid")->Increment();
  const MetricSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].first, "alpha");
  EXPECT_EQ(snapshot.counters[1].first, "mid");
  EXPECT_EQ(snapshot.counters[2].first, "zeta");
}

TEST(MetricRegistryTest, CollectorsPublishAndDuplicateCountersSum) {
  MetricRegistry registry;
  registry.GetCounter("shared")->Increment(10);
  const uint64_t handle = registry.AddCollector([](MetricSink& sink) {
    sink.AddCounter("shared", 5);
    sink.AddGauge("collected.gauge", 42);
  });
  MetricSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].second, 15u);  // Owned + collector sum.
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 42);

  registry.RemoveCollector(handle);
  snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters[0].second, 10u);
  EXPECT_TRUE(snapshot.gauges.empty());
}

TEST(MetricRegistryTest, DuplicateGaugesLastWriterWins) {
  MetricRegistry registry;
  registry.GetGauge("g")->Set(1);
  registry.AddCollector([](MetricSink& sink) { sink.AddGauge("g", 2); });
  const MetricSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 2);
}

/// Hand-built snapshot so the exposition strings are exact golden values
/// (registry-owned histograms would bucketize the quantiles).
MetricSnapshot GoldenSnapshot() {
  MetricSnapshot snapshot;
  snapshot.counters.emplace_back("net.requests", 12);
  snapshot.counters.emplace_back("stage.b-0.accepted", 7);
  snapshot.gauges.emplace_back("queue.len", -3);
  HistogramSummary summary;
  summary.count = 4;
  summary.mean = 150;
  summary.p50 = 100;
  summary.p90 = 200;
  summary.p99 = 300;
  snapshot.histograms.emplace_back("stage.b-0.est_wait_err_under_ns",
                                   summary);
  return snapshot;
}

TEST(MetricRegistryTest, GoldenJson) {
  EXPECT_EQ(
      MetricRegistry::JsonFor(GoldenSnapshot()),
      "{\"counters\":{\"net.requests\":12,\"stage.b-0.accepted\":7},"
      "\"gauges\":{\"queue.len\":-3},"
      "\"histograms\":{\"stage.b-0.est_wait_err_under_ns\":"
      "{\"count\":4,\"mean_ns\":150,\"p50_ns\":100,\"p90_ns\":200,"
      "\"p99_ns\":300}}}");
}

TEST(MetricRegistryTest, GoldenPrometheus) {
  EXPECT_EQ(
      MetricRegistry::PrometheusFor(GoldenSnapshot()),
      "# TYPE bouncer_net_requests counter\n"
      "bouncer_net_requests 12\n"
      "# TYPE bouncer_stage_b_0_accepted counter\n"
      "bouncer_stage_b_0_accepted 7\n"
      "# TYPE bouncer_queue_len gauge\n"
      "bouncer_queue_len -3\n"
      "# TYPE bouncer_stage_b_0_est_wait_err_under_ns_count counter\n"
      "bouncer_stage_b_0_est_wait_err_under_ns_count 4\n"
      "# TYPE bouncer_stage_b_0_est_wait_err_under_ns_mean_ns gauge\n"
      "bouncer_stage_b_0_est_wait_err_under_ns_mean_ns 150\n"
      "# TYPE bouncer_stage_b_0_est_wait_err_under_ns_p50_ns gauge\n"
      "bouncer_stage_b_0_est_wait_err_under_ns_p50_ns 100\n"
      "# TYPE bouncer_stage_b_0_est_wait_err_under_ns_p90_ns gauge\n"
      "bouncer_stage_b_0_est_wait_err_under_ns_p90_ns 200\n"
      "# TYPE bouncer_stage_b_0_est_wait_err_under_ns_p99_ns gauge\n"
      "bouncer_stage_b_0_est_wait_err_under_ns_p99_ns 300\n");
}

TEST(MetricRegistryTest, JsonEscapesMetricNames) {
  MetricSnapshot snapshot;
  snapshot.counters.emplace_back("weird\"name\\with\nbytes", 1);
  EXPECT_EQ(MetricRegistry::JsonFor(snapshot),
            "{\"counters\":{\"weird\\\"name\\\\with\\nbytes\":1},"
            "\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricRegistryTest, EmptyRegistryExpositions) {
  MetricRegistry registry;
  EXPECT_EQ(registry.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  EXPECT_EQ(registry.ToPrometheus(), "");
}

}  // namespace
}  // namespace bouncer::stats
