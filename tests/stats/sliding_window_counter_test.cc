#include "src/stats/sliding_window_counter.h"

#include <gtest/gtest.h>

#include <thread>

namespace bouncer::stats {
namespace {

constexpr Nanos kStep = 10 * kMillisecond;
constexpr Nanos kWindow = kSecond;

TEST(SlidingWindowCounterTest, StartsEmpty) {
  SlidingWindowCounter w(3, kWindow, kStep);
  for (size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(w.ReceivedCount(t), 0u);
    EXPECT_EQ(w.AcceptedCount(t), 0u);
  }
}

TEST(SlidingWindowCounterTest, RecordAccepted) {
  SlidingWindowCounter w(2, kWindow, kStep);
  w.Record(0, true, 0);
  w.Record(0, false, 0);
  w.Record(1, true, 0);
  EXPECT_EQ(w.ReceivedCount(0), 2u);
  EXPECT_EQ(w.AcceptedCount(0), 1u);
  EXPECT_EQ(w.ReceivedCount(1), 1u);
  EXPECT_EQ(w.AcceptedCount(1), 1u);
}

TEST(SlidingWindowCounterTest, OutOfRangeTypeIgnored) {
  SlidingWindowCounter w(2, kWindow, kStep);
  w.Record(5, true, 0);
  EXPECT_EQ(w.ReceivedCount(5), 0u);
  EXPECT_EQ(w.ReceivedCount(0), 0u);
}

TEST(SlidingWindowCounterTest, CountsSurviveWithinWindow) {
  SlidingWindowCounter w(1, kWindow, kStep);
  w.Record(0, true, 0);
  w.AdvanceTo(kWindow - kStep);
  EXPECT_EQ(w.ReceivedCount(0), 1u);
}

TEST(SlidingWindowCounterTest, CountsExpireAfterWindow) {
  SlidingWindowCounter w(1, kWindow, kStep);
  w.Record(0, true, 0);
  w.AdvanceTo(kWindow + kStep);
  EXPECT_EQ(w.ReceivedCount(0), 0u);
  EXPECT_EQ(w.AcceptedCount(0), 0u);
}

TEST(SlidingWindowCounterTest, PartialExpiry) {
  SlidingWindowCounter w(1, kWindow, kStep);
  w.Record(0, true, 0);                 // Slot for t=0.
  w.Record(0, true, kWindow / 2);       // Slot mid-window.
  w.AdvanceTo(kWindow + kStep);         // First record expired.
  EXPECT_EQ(w.ReceivedCount(0), 1u);
}

TEST(SlidingWindowCounterTest, LargeJumpClearsEverything) {
  SlidingWindowCounter w(2, kWindow, kStep);
  w.Record(0, true, 0);
  w.Record(1, false, 0);
  w.AdvanceTo(100 * kWindow);
  EXPECT_EQ(w.ReceivedCount(0), 0u);
  EXPECT_EQ(w.ReceivedCount(1), 0u);
}

TEST(SlidingWindowCounterTest, AcceptanceRatio) {
  SlidingWindowCounter w(1, kWindow, kStep);
  EXPECT_DOUBLE_EQ(w.AcceptanceRatio(0), 1.0);  // Default empty value.
  EXPECT_DOUBLE_EQ(w.AcceptanceRatio(0, 0.5), 0.5);
  for (int i = 0; i < 3; ++i) w.Record(0, true, 0);
  w.Record(0, false, 0);
  EXPECT_DOUBLE_EQ(w.AcceptanceRatio(0), 0.75);
}

TEST(SlidingWindowCounterTest, AverageAcceptanceRatioMatchesAlg3) {
  SlidingWindowCounter w(3, kWindow, kStep);
  // Type 0: AR = 1.0, type 1: AR = 0.5, type 2: no traffic -> 0.
  w.Record(0, true, 0);
  w.Record(1, true, 0);
  w.Record(1, false, 0);
  EXPECT_DOUBLE_EQ(w.AverageAcceptanceRatio(), (1.0 + 0.5 + 0.0) / 3.0);
}

TEST(SlidingWindowCounterTest, DurationRoundsUpToSteps) {
  SlidingWindowCounter w(1, kStep * 3 + 1, kStep);
  EXPECT_EQ(w.duration(), kStep * 4);
}

TEST(SlidingWindowCounterTest, RecordAdvancesImplicitly) {
  SlidingWindowCounter w(1, kWindow, kStep);
  w.Record(0, true, 0);
  // A record far in the future expires the old one as a side effect.
  w.Record(0, false, 10 * kWindow);
  EXPECT_EQ(w.ReceivedCount(0), 1u);
  EXPECT_EQ(w.AcceptedCount(0), 0u);
}

TEST(SlidingWindowCounterTest, ConcurrentRecords) {
  SlidingWindowCounter w(4, kWindow, kStep);
  std::vector<std::thread> threads;
  constexpr int kPerThread = 10000;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&w, t] {
      for (int i = 0; i < kPerThread; ++i) {
        w.Record(static_cast<size_t>(t), i % 2 == 0, kStep);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(w.ReceivedCount(t), static_cast<uint64_t>(kPerThread));
    EXPECT_EQ(w.AcceptedCount(t), static_cast<uint64_t>(kPerThread / 2));
  }
}

// Striped cells: totals must stay exact when records land on many
// threads' stripes, and a cross-stripe UndoAccepted (the accept landed
// on another thread's stripe) must still retract exactly one accept.
TEST(SlidingWindowCounterTest, StripedRecordsSumExactly) {
  SlidingWindowCounter w(2, kWindow, kStep, /*num_stripes=*/4);
  EXPECT_EQ(w.num_stripes(), 4u);
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&w] {
      for (int i = 0; i < kPerThread; ++i) {
        w.Record(0, i % 2 == 0, kStep);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(w.ReceivedCount(0), static_cast<uint64_t>(4 * kPerThread));
  EXPECT_EQ(w.AcceptedCount(0), static_cast<uint64_t>(4 * kPerThread / 2));
  EXPECT_EQ(w.ReceivedCount(1), 0u);
}

TEST(SlidingWindowCounterTest, StripedCrossThreadUndo) {
  SlidingWindowCounter w(1, kWindow, kStep, /*num_stripes=*/2);
  w.Record(0, true, 0);
  w.Record(0, true, 0);
  // Undo from a fresh thread: its stripe never saw the accepts, driving
  // that stripe's cells negative; the cross-stripe sums stay exact.
  std::thread undoer([&w] { w.UndoAccepted(0, 0); });
  undoer.join();
  EXPECT_EQ(w.AcceptedCount(0), 1u);
  EXPECT_EQ(w.ReceivedCount(0), 2u);  // Undo never retracts received.
  // The negative stripe bucket retires cleanly on rotation.
  w.AdvanceTo(2 * kWindow);
  EXPECT_EQ(w.AcceptedCount(0), 0u);
  EXPECT_EQ(w.ReceivedCount(0), 0u);
}

TEST(SlidingWindowCounterTest, StripedUndoWithNothingAcceptedIsNoop) {
  SlidingWindowCounter w(1, kWindow, kStep, /*num_stripes=*/2);
  w.Record(0, false, 0);
  w.UndoAccepted(0, 0);  // Bucket's cross-stripe accepted sum is 0.
  EXPECT_EQ(w.AcceptedCount(0), 0u);
  EXPECT_EQ(w.ReceivedCount(0), 1u);
}

}  // namespace
}  // namespace bouncer::stats
