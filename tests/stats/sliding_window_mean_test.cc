#include "src/stats/sliding_window_mean.h"

#include <gtest/gtest.h>

#include <thread>

namespace bouncer::stats {
namespace {

constexpr Nanos kStep = kSecond;
constexpr Nanos kWindow = 60 * kSecond;

TEST(SlidingWindowMeanTest, EmptyReturnsDefault) {
  SlidingWindowMean m(kWindow, kStep);
  EXPECT_EQ(m.Count(), 0u);
  EXPECT_DOUBLE_EQ(m.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.Mean(42.0), 42.0);
  EXPECT_DOUBLE_EQ(m.RatePerSecond(0), 0.0);
}

TEST(SlidingWindowMeanTest, MeanOfSamples) {
  SlidingWindowMean m(kWindow, kStep);
  m.Record(10, 0);
  m.Record(20, 0);
  m.Record(30, 0);
  EXPECT_EQ(m.Count(), 3u);
  EXPECT_DOUBLE_EQ(m.Mean(), 20.0);
}

TEST(SlidingWindowMeanTest, SamplesExpire) {
  SlidingWindowMean m(kWindow, kStep);
  m.Record(100, 0);
  m.AdvanceTo(kWindow + kStep);
  EXPECT_EQ(m.Count(), 0u);
  EXPECT_DOUBLE_EQ(m.Mean(), 0.0);
}

TEST(SlidingWindowMeanTest, MixedAges) {
  SlidingWindowMean m(kWindow, kStep);
  m.Record(100, 0);
  m.Record(10, 30 * kSecond);
  m.AdvanceTo(61 * kSecond);  // First sample out, second still in.
  EXPECT_EQ(m.Count(), 1u);
  EXPECT_DOUBLE_EQ(m.Mean(), 10.0);
}

TEST(SlidingWindowMeanTest, RatePerSecond) {
  SlidingWindowMean m(kWindow, kStep);
  Nanos last = 0;
  for (int i = 0; i < 120; ++i) {
    last = static_cast<Nanos>(i) * kSecond / 2;  // 2 events/s.
    m.RecordEvent(last);
  }
  EXPECT_NEAR(m.RatePerSecond(last), 2.0, 0.05);
}

TEST(SlidingWindowMeanTest, NegativeValuesAllowed) {
  SlidingWindowMean m(kWindow, kStep);
  m.Record(-10, 0);
  m.Record(10, 0);
  EXPECT_DOUBLE_EQ(m.Mean(), 0.0);
}

TEST(SlidingWindowMeanTest, LargeJumpClears) {
  SlidingWindowMean m(kWindow, kStep);
  for (int i = 0; i < 100; ++i) m.Record(5, 0);
  m.AdvanceTo(1000 * kWindow);
  EXPECT_EQ(m.Count(), 0u);
}

TEST(SlidingWindowMeanTest, ConcurrentRecords) {
  SlidingWindowMean m(kWindow, kStep);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&m] {
      for (int i = 0; i < 10000; ++i) m.Record(7, kSecond);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.Count(), 40000u);
  EXPECT_DOUBLE_EQ(m.Mean(), 7.0);
}

}  // namespace
}  // namespace bouncer::stats
