#include "src/stats/summary.h"

#include <gtest/gtest.h>

namespace bouncer::stats {
namespace {

TEST(SampleSummaryTest, Empty) {
  SampleSummary s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
  EXPECT_DOUBLE_EQ(s.FractionAbove(1.0), 0.0);
}

TEST(SampleSummaryTest, MeanAndCount) {
  SampleSummary s;
  s.Add(1.0);
  s.Add(2.0);
  s.Add(3.0);
  EXPECT_EQ(s.Count(), 3u);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
}

TEST(SampleSummaryTest, NearestRankPercentiles) {
  SampleSummary s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.9), 90.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 100.0);
}

TEST(SampleSummaryTest, SingleSampleAllPercentiles) {
  SampleSummary s;
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.01), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.99), 7.0);
}

TEST(SampleSummaryTest, AddAfterPercentileResorts) {
  SampleSummary s;
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 10.0);
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 2.0);
}

TEST(SampleSummaryTest, Max) {
  SampleSummary s;
  s.Add(3.0);
  s.Add(9.0);
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(SampleSummaryTest, FractionAboveStrict) {
  SampleSummary s;
  s.Add(1.0);
  s.Add(2.0);
  s.Add(3.0);
  s.Add(4.0);
  EXPECT_DOUBLE_EQ(s.FractionAbove(2.0), 0.5);  // 3 and 4.
  EXPECT_DOUBLE_EQ(s.FractionAbove(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.FractionAbove(4.0), 0.0);
}

TEST(SampleSummaryTest, ClearResets) {
  SampleSummary s;
  s.Add(5.0);
  s.Clear();
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 0.0);
}

}  // namespace
}  // namespace bouncer::stats
