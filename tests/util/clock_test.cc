#include "src/util/clock.h"

#include <gtest/gtest.h>

#include <thread>

namespace bouncer {
namespace {

TEST(SystemClockTest, IsMonotonic) {
  SystemClock clock;
  const Nanos a = clock.Now();
  const Nanos b = clock.Now();
  EXPECT_LE(a, b);
}

TEST(SystemClockTest, AdvancesWithRealTime) {
  SystemClock clock;
  const Nanos a = clock.Now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const Nanos b = clock.Now();
  EXPECT_GE(b - a, kMillisecond);
}

TEST(SystemClockTest, GlobalReturnsSameInstance) {
  EXPECT_EQ(SystemClock::Global(), SystemClock::Global());
}

TEST(ManualClockTest, StartsAtGivenTime) {
  ManualClock clock(123);
  EXPECT_EQ(clock.Now(), 123);
}

TEST(ManualClockTest, SetTime) {
  ManualClock clock;
  clock.SetTime(5 * kSecond);
  EXPECT_EQ(clock.Now(), 5 * kSecond);
}

TEST(ManualClockTest, AdvanceReturnsNewTime) {
  ManualClock clock(100);
  EXPECT_EQ(clock.Advance(50), 150);
  EXPECT_EQ(clock.Now(), 150);
}

TEST(ManualClockTest, VisibleAcrossThreads) {
  ManualClock clock;
  clock.SetTime(42);
  Nanos seen = 0;
  std::thread reader([&] { seen = clock.Now(); });
  reader.join();
  EXPECT_EQ(seen, 42);
}

}  // namespace
}  // namespace bouncer
