#include "src/util/mpmc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bouncer {
namespace {

TEST(MpmcQueueTest, PushPopSingleThreadFifo) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(int{i}));
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.TryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(out));
}

TEST(MpmcQueueTest, CapacityRoundsUpToPowerOfTwo) {
  MpmcQueue<int> q(100);
  EXPECT_EQ(q.capacity(), 128u);
  MpmcQueue<int> q2(1);
  EXPECT_EQ(q2.capacity(), 2u);
  MpmcQueue<int> q3(64);
  EXPECT_EQ(q3.capacity(), 64u);
}

TEST(MpmcQueueTest, RejectsPushWhenFull) {
  MpmcQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(int{i}));
  EXPECT_FALSE(q.TryPush(99));
  int out = -1;
  ASSERT_TRUE(q.TryPop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(q.TryPush(99));  // Slot freed by the pop.
}

TEST(MpmcQueueTest, FailedPushLeavesValueIntact) {
  MpmcQueue<std::vector<int>> q(2);
  EXPECT_TRUE(q.TryPush(std::vector<int>{1}));
  EXPECT_TRUE(q.TryPush(std::vector<int>{2}));
  std::vector<int> v{3, 4, 5};
  EXPECT_FALSE(q.TryPush(std::move(v)));
  EXPECT_EQ(v.size(), 3u);  // Not moved from on failure.
}

TEST(MpmcQueueTest, MoveOnlyPayload) {
  MpmcQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.TryPush(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.TryPop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

/// Tagged value: producer id in the high bits, per-producer sequence in
/// the low bits, so consumers can verify both provenance and order.
constexpr uint64_t Tag(uint64_t producer, uint64_t seq) {
  return (producer << 32) | seq;
}

// The stress contract of the ring under full MPMC contention: every
// pushed value is popped exactly once (no loss, no duplication), and the
// values of any single producer come out in that producer's push order.
TEST(MpmcQueueStressTest, NoLossNoDupFifoPerProducer) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr uint64_t kPerProducer = 50'000;
  MpmcQueue<uint64_t> q(1024);

  std::atomic<uint64_t> popped_total{0};
  // consumer x producer -> last sequence seen, for per-producer FIFO.
  std::vector<std::vector<int64_t>> last_seen(
      kConsumers, std::vector<int64_t>(kProducers, -1));
  std::vector<std::vector<uint8_t>> seen(
      kProducers, std::vector<uint8_t>(kPerProducer, 0));
  std::atomic<bool> fifo_violated{false};
  std::mutex seen_mu;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (uint64_t s = 0; s < kPerProducer; ++s) {
        while (!q.TryPush(Tag(static_cast<uint64_t>(p), s))) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      uint64_t value = 0;
      while (popped_total.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        if (!q.TryPop(value)) {
          std::this_thread::yield();
          continue;
        }
        popped_total.fetch_add(1, std::memory_order_relaxed);
        const auto producer = static_cast<int>(value >> 32);
        const auto seq = static_cast<int64_t>(value & 0xffffffffu);
        if (seq <= last_seen[c][producer]) fifo_violated.store(true);
        last_seen[c][producer] = seq;
        std::lock_guard<std::mutex> lock(seen_mu);
        seen[producer][static_cast<size_t>(seq)]++;
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(popped_total.load(), kProducers * kPerProducer);
  EXPECT_FALSE(fifo_violated.load())
      << "a consumer observed one producer's values out of order";
  for (int p = 0; p < kProducers; ++p) {
    for (uint64_t s = 0; s < kPerProducer; ++s) {
      ASSERT_EQ(seen[p][s], 1) << "producer " << p << " seq " << s
                               << " popped " << int{seen[p][s]} << " times";
    }
  }
}

// Producers blocked on a full ring make progress as consumers free slots.
TEST(MpmcQueueStressTest, FullRingBackpressure) {
  MpmcQueue<uint64_t> q(4);
  constexpr uint64_t kTotal = 20'000;
  std::thread producer([&q] {
    for (uint64_t i = 0; i < kTotal; ++i) {
      while (!q.TryPush(uint64_t{i})) std::this_thread::yield();
    }
  });
  uint64_t next = 0;
  uint64_t value = 0;
  while (next < kTotal) {
    if (q.TryPop(value)) {
      ASSERT_EQ(value, next);  // Single producer + single consumer: FIFO.
      ++next;
    }
  }
  producer.join();
  EXPECT_FALSE(q.TryPop(value));
}

TEST(ParkingLotTest, NotifyWakesParkedThread) {
  ParkingLot lot;
  std::atomic<bool> ready{false};
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    lot.ParkUnless([&] { return ready.load(); });
    woke.store(true);
  });
  // Let the thread park (best-effort; the backstop timeout keeps this
  // test deterministic even if it has not parked yet).
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ready.store(true);
  lot.NotifyOne();
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(ParkingLotTest, RecheckSkipsPark) {
  ParkingLot lot;
  // Condition already true: ParkUnless must return without any notify.
  lot.ParkUnless([] { return true; });
  SUCCEED();
}

}  // namespace
}  // namespace bouncer
