#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace bouncer {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedingResets) {
  Rng a(9);
  const uint64_t first = a.NextU64();
  a.NextU64();
  a.Seed(9);
  EXPECT_EQ(a.NextU64(), first);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedWithinBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(8);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[rng.NextBounded(10)];
  for (int h : hits) EXPECT_GT(h, 800);  // ~1000 expected per cell.
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.05)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.05, 0.005);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextExponential(1.0), 0.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, LogNormalMatchesParams) {
  Rng rng(14);
  const double mu = 1.0;
  const double sigma = 0.5;
  double sum = 0.0;
  const int n = 200000;
  std::vector<double> samples;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextLogNormal(mu, sigma);
    EXPECT_GT(v, 0.0);
    sum += v;
    samples.push_back(v);
  }
  const double expected_mean = std::exp(mu + sigma * sigma / 2);
  EXPECT_NEAR(sum / n, expected_mean, expected_mean * 0.02);
}

TEST(LogNormalParamsTest, FromMeanMedianRecoversBoth) {
  const auto p = LogNormalParams::FromMeanMedian(20.05, 12.51);
  EXPECT_NEAR(p.Mean(), 20.05, 1e-9);
  EXPECT_NEAR(p.Median(), 12.51, 1e-9);
}

TEST(LogNormalParamsTest, DegenerateWhenMeanEqualsMedian) {
  const auto p = LogNormalParams::FromMeanMedian(5.0, 5.0);
  EXPECT_EQ(p.sigma, 0.0);
  EXPECT_NEAR(p.Median(), 5.0, 1e-9);
}

TEST(LogNormalParamsTest, MeanBelowMedianClampsToPointMass) {
  const auto p = LogNormalParams::FromMeanMedian(1.0, 5.0);
  EXPECT_EQ(p.sigma, 0.0);
}

TEST(LogNormalParamsTest, NonPositiveMedianSafe) {
  const auto p = LogNormalParams::FromMeanMedian(1.0, 0.0);
  EXPECT_EQ(p.sigma, 0.0);
  EXPECT_NEAR(p.Median(), 1.0, 1e-12);  // exp(0).
}

TEST(LogNormalParamsTest, QuantileMedian) {
  const auto p = LogNormalParams::FromMeanMedian(12.13, 7.40);
  EXPECT_NEAR(p.Quantile(0.5), 7.40, 0.01);
}

// Table 1 consistency: the published p90 values follow from the
// mean/median lognormal parameterization to within a few percent.
struct Table1Row {
  double mean, p50, p90;
};
class Table1Consistency : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Consistency, P90MatchesPublished) {
  const Table1Row row = GetParam();
  const auto p = LogNormalParams::FromMeanMedian(row.mean, row.p50);
  EXPECT_NEAR(p.Quantile(0.9), row.p90, row.p90 * 0.06);
}

INSTANTIATE_TEST_SUITE_P(PaperTable1, Table1Consistency,
                         ::testing::Values(Table1Row{1.16, 0.38, 2.70},
                                           Table1Row{2.53, 2.22, 4.27},
                                           Table1Row{12.13, 7.40, 26.44},
                                           Table1Row{20.05, 12.51, 44.26}));

TEST(LogNormalParamsTest, QuantileSampleAgreement) {
  // Empirical quantiles of sampled values should match the analytic ones.
  const auto p = LogNormalParams::FromMeanMedian(20.05, 12.51);
  Rng rng(15);
  std::vector<double> samples;
  const int n = 200000;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    samples.push_back(rng.NextLogNormal(p.mu, p.sigma));
  }
  std::sort(samples.begin(), samples.end());
  const double p90 = samples[static_cast<size_t>(0.9 * n)];
  EXPECT_NEAR(p90, p.Quantile(0.9), p.Quantile(0.9) * 0.03);
}

}  // namespace
}  // namespace bouncer
