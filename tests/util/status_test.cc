#include "src/util/status.h"

#include <gtest/gtest.h>

namespace bouncer {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition},
      {Status::OutOfRange("e"), StatusCode::kOutOfRange},
      {Status::ResourceExhausted("f"), StatusCode::kResourceExhausted},
      {Status::Unavailable("g"), StatusCode::kUnavailable},
      {Status::Internal("h"), StatusCode::kInternal},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  ASSERT_TRUE(v.ok());
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

}  // namespace
}  // namespace bouncer
