#include "src/util/time.h"

#include <gtest/gtest.h>

namespace bouncer {
namespace {

TEST(TimeTest, UnitConstants) {
  EXPECT_EQ(kMicrosecond, 1'000);
  EXPECT_EQ(kMillisecond, 1'000'000);
  EXPECT_EQ(kSecond, 1'000'000'000);
}

TEST(TimeTest, ToMillisRoundTrip) {
  EXPECT_DOUBLE_EQ(ToMillis(kMillisecond), 1.0);
  EXPECT_DOUBLE_EQ(ToMillis(18 * kMillisecond), 18.0);
  EXPECT_EQ(FromMillis(18.0), 18 * kMillisecond);
  EXPECT_EQ(FromMillis(0.5), 500'000);
}

TEST(TimeTest, ToSecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
  EXPECT_EQ(FromSeconds(2.5), 2'500'000'000LL);
}

TEST(TimeTest, NegativeDurations) {
  EXPECT_DOUBLE_EQ(ToMillis(-kMillisecond), -1.0);
  EXPECT_EQ(FromMillis(-1.0), -kMillisecond);
}

}  // namespace
}  // namespace bouncer
