#include "src/workload/load_generator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace bouncer::workload {
namespace {

WorkloadSpec UniformTwoTypeMix() {
  const Slo slo{};
  return WorkloadSpec({QueryTypeSpec::FromMillis("a", 0.5, 1, 1, slo),
                       QueryTypeSpec::FromMillis("b", 0.5, 1, 1, slo)});
}

TEST(LoadGeneratorTest, ApproximatesTargetRate) {
  const auto mix = UniformTwoTypeMix();
  LoadGenerator::Options options;
  options.rate_qps = 2000.0;
  options.duration = kSecond / 2;
  std::atomic<uint64_t> received{0};
  LoadGenerator generator(&mix, options,
                          [&](size_t) { received.fetch_add(1); });
  const uint64_t sent = generator.Run();
  EXPECT_EQ(sent, received.load());
  // ~1000 expected over 0.5 s; Poisson sd ~ 32. Allow generous slack for
  // scheduler jitter on a loaded machine.
  EXPECT_GT(sent, 700u);
  EXPECT_LT(sent, 1300u);
}

TEST(LoadGeneratorTest, SamplesMixProportions) {
  const auto mix = UniformTwoTypeMix();
  LoadGenerator::Options options;
  options.rate_qps = 5000.0;
  options.duration = kSecond / 2;
  std::atomic<uint64_t> type_a{0};
  std::atomic<uint64_t> total{0};
  LoadGenerator generator(&mix, options, [&](size_t type) {
    total.fetch_add(1);
    if (type == 0) type_a.fetch_add(1);
  });
  generator.Run();
  ASSERT_GT(total.load(), 500u);
  const double frac =
      static_cast<double>(type_a.load()) / static_cast<double>(total.load());
  EXPECT_NEAR(frac, 0.5, 0.08);
}

TEST(LoadGeneratorTest, StopsEarlyOnRequest) {
  const auto mix = UniformTwoTypeMix();
  LoadGenerator::Options options;
  options.rate_qps = 100.0;
  options.duration = 30 * kSecond;  // Would run for 30 s without the stop.
  std::atomic<uint64_t> received{0};
  LoadGenerator generator(&mix, options,
                          [&](size_t) { received.fetch_add(1); });
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    generator.RequestStop();
  });
  const auto start = std::chrono::steady_clock::now();
  generator.Run();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  stopper.join();
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(LoadGeneratorTest, MultiThreadedSplitsRate) {
  const auto mix = UniformTwoTypeMix();
  LoadGenerator::Options options;
  options.rate_qps = 2000.0;
  options.duration = kSecond / 2;
  options.num_threads = 2;
  std::atomic<uint64_t> received{0};
  LoadGenerator generator(&mix, options,
                          [&](size_t) { received.fetch_add(1); });
  const uint64_t sent = generator.Run();
  EXPECT_GT(sent, 600u);
  EXPECT_LT(sent, 1400u);
}

TEST(LoadGeneratorTest, ZeroRateSendsNothing) {
  const auto mix = UniformTwoTypeMix();
  LoadGenerator::Options options;
  options.rate_qps = 0.0;
  options.duration = 50 * kMillisecond;
  LoadGenerator generator(&mix, options, [&](size_t) { FAIL(); });
  EXPECT_EQ(generator.Run(), 0u);
}

}  // namespace
}  // namespace bouncer::workload
