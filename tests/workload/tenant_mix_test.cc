#include "src/workload/tenant_mix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/tenant_registry.h"
#include "src/util/rng.h"

namespace bouncer::workload {
namespace {

TEST(TenantMixTest, ValidateAcceptsWellFormedMix) {
  TenantMix mix({{1, 0.5, 1.0}, {2, 0.3, 2.0}, {3, 0.2, 1.0}});
  EXPECT_TRUE(mix.Validate().ok());
  EXPECT_EQ(mix.size(), 3u);
}

TEST(TenantMixTest, ValidateRejectsBadMixes) {
  EXPECT_EQ(TenantMix(std::vector<TenantSpec>{}).Validate().code(),
            StatusCode::kInvalidArgument);
  // Duplicate wire ids.
  EXPECT_FALSE(TenantMix({{1, 0.5, 1.0}, {1, 0.5, 1.0}}).Validate().ok());
  // The default tenant id 0 is reserved.
  EXPECT_FALSE(TenantMix({{0, 1.0, 1.0}}).Validate().ok());
  // Non-positive weight.
  EXPECT_FALSE(TenantMix({{1, 1.0, 0.0}}).Validate().ok());
  // Shares must sum to ~1.
  EXPECT_FALSE(TenantMix({{1, 0.5, 1.0}, {2, 0.2, 1.0}}).Validate().ok());
  // Negative share.
  EXPECT_FALSE(TenantMix({{1, 1.2, 1.0}, {2, -0.2, 1.0}}).Validate().ok());
}

TEST(TenantMixTest, SampleFollowsShares) {
  TenantMix mix({{1, 0.8, 1.0}, {2, 0.2, 1.0}});
  ASSERT_TRUE(mix.Validate().ok());
  Rng rng(42);
  constexpr int kDraws = 20'000;
  int first = 0;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t id = mix.SampleExternalId(rng);
    ASSERT_TRUE(id == 1 || id == 2);
    if (id == 1) ++first;
  }
  const double p = static_cast<double>(first) / kDraws;
  EXPECT_NEAR(p, 0.8, 0.02);
}

TEST(TenantMixTest, UniformMixSplitsEvenly) {
  const TenantMix mix = UniformTenantMix(5);
  ASSERT_TRUE(mix.Validate().ok());
  ASSERT_EQ(mix.size(), 5u);
  for (size_t i = 0; i < mix.size(); ++i) {
    EXPECT_EQ(mix.tenant(i).external_id, i + 1);
    EXPECT_DOUBLE_EQ(mix.tenant(i).share, 0.2);
    EXPECT_DOUBLE_EQ(mix.tenant(i).weight, 1.0);
  }
}

TEST(TenantMixTest, ZipfianMixIsHeadHeavyAndValid) {
  const TenantMix mix = ZipfianTenantMix(100, 1.0);
  ASSERT_TRUE(mix.Validate().ok());
  ASSERT_EQ(mix.size(), 100u);
  // Monotone decreasing shares, id 1 hottest; ratio of head to rank-k
  // follows 1/k^s.
  for (size_t i = 1; i < mix.size(); ++i) {
    EXPECT_GE(mix.tenant(i - 1).share, mix.tenant(i).share);
  }
  EXPECT_NEAR(mix.tenant(0).share / mix.tenant(9).share, 10.0, 1e-6);
}

TEST(TenantMixTest, NoisyNeighborShapeAndEqualWeights) {
  const TenantMix mix = NoisyNeighborMix(4, /*aggressor_share=*/0.6);
  ASSERT_TRUE(mix.Validate().ok());
  ASSERT_EQ(mix.size(), 4u);
  EXPECT_EQ(mix.tenant(0).external_id, 1u);
  EXPECT_DOUBLE_EQ(mix.tenant(0).share, 0.6);
  for (size_t i = 1; i < mix.size(); ++i) {
    EXPECT_NEAR(mix.tenant(i).share, 0.4 / 3, 1e-12);
    EXPECT_DOUBLE_EQ(mix.tenant(i).weight, mix.tenant(0).weight);
  }
}

TEST(TenantMixTest, PopulateRegistryInternsInSpecOrder) {
  const TenantMix mix = NoisyNeighborMix(3);
  TenantRegistry registry;
  const StatusOr<std::vector<TenantId>> ids = mix.PopulateRegistry(&registry);
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 3u);
  for (size_t i = 0; i < ids->size(); ++i) {
    EXPECT_EQ(registry.ExternalIdOf((*ids)[i]), mix.tenant(i).external_id);
    EXPECT_DOUBLE_EQ(registry.WeightOf((*ids)[i]), mix.tenant(i).weight);
  }
  EXPECT_EQ(registry.size(), 4u);  // Default tenant + 3.
}

}  // namespace
}  // namespace bouncer::workload
