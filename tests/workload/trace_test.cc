#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>

namespace bouncer::workload {
namespace {

QueryTrace SmallTrace() {
  QueryTrace trace({"A", "B"}, {});
  EXPECT_TRUE(trace.Append({0, 0, 10, 20}).ok());
  EXPECT_TRUE(trace.Append({kMillisecond, 1, 30, 40}).ok());
  EXPECT_TRUE(trace.Append({2 * kMillisecond, 0, 50, 60}).ok());
  return trace;
}

TEST(QueryTraceTest, AppendValidation) {
  QueryTrace trace({"A"}, {});
  EXPECT_TRUE(trace.Append({10, 0, 0, 0}).ok());
  EXPECT_EQ(trace.Append({5, 0, 0, 0}).code(),
            StatusCode::kInvalidArgument);  // Decreasing timestamp.
  EXPECT_EQ(trace.Append({20, 7, 0, 0}).code(),
            StatusCode::kOutOfRange);  // Bad type index.
  EXPECT_TRUE(trace.Append({10, 0, 0, 0}).ok());  // Equal timestamps OK.
}

TEST(QueryTraceTest, DurationAndQps) {
  const QueryTrace trace = SmallTrace();
  EXPECT_EQ(trace.Duration(), 2 * kMillisecond);
  EXPECT_NEAR(trace.AverageQps(), 3 / 0.002, 1.0);
}

TEST(QueryTraceTest, TypeCounts) {
  const QueryTrace trace = SmallTrace();
  EXPECT_EQ(trace.TypeCounts(), (std::vector<uint64_t>{2, 1}));
}

TEST(QueryTraceTest, SerializeParseRoundTrip) {
  const QueryTrace trace = SmallTrace();
  const auto reparsed = QueryTrace::Parse(trace.Serialize());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->type_names(), trace.type_names());
  EXPECT_EQ(reparsed->records(), trace.records());
}

TEST(QueryTraceTest, ParseRejectsGarbage) {
  EXPECT_FALSE(QueryTrace::Parse("").ok());
  EXPECT_FALSE(QueryTrace::Parse("# wrong header\ntypes: A\n").ok());
  EXPECT_FALSE(QueryTrace::Parse("# bouncer-trace v1\nnope\n").ok());
  EXPECT_FALSE(QueryTrace::Parse("# bouncer-trace v1\ntypes: \n").ok());
  EXPECT_FALSE(
      QueryTrace::Parse("# bouncer-trace v1\ntypes: A\n1 2 3\n").ok());
  EXPECT_FALSE(
      QueryTrace::Parse("# bouncer-trace v1\ntypes: A\n5 9 0 0\n").ok());
  EXPECT_FALSE(
      QueryTrace::Parse("# bouncer-trace v1\ntypes: A\n5 0 0 0\n1 0 0 0\n")
          .ok());
}

TEST(QueryTraceTest, ParseSkipsCommentsAndBlankLines) {
  const auto trace = QueryTrace::Parse(
      "# bouncer-trace v1\ntypes: A\n# comment\n\n5 0 1 2\n");
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->size(), 1u);
}

TEST(QueryTraceTest, FileRoundTrip) {
  const QueryTrace trace = SmallTrace();
  const std::string path = ::testing::TempDir() + "/bouncer_trace_test.txt";
  ASSERT_TRUE(trace.SaveToFile(path).ok());
  const auto loaded = QueryTrace::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->records(), trace.records());
  std::remove(path.c_str());
}

TEST(QueryTraceTest, LoadMissingFileIsNotFound) {
  EXPECT_EQ(QueryTrace::LoadFromFile("/nonexistent/trace.txt").status().code(),
            StatusCode::kNotFound);
}

TEST(QueryTraceTest, SynthesizeMatchesMixAndRate) {
  const auto mix = PaperSimulationWorkload();
  const QueryTrace trace =
      QueryTrace::Synthesize(mix, 10'000.0, 5 * kSecond, 3, 1000);
  EXPECT_EQ(trace.type_names().size(), 4u);
  // ~50k arrivals expected.
  EXPECT_NEAR(static_cast<double>(trace.size()), 50'000.0, 2'000.0);
  const auto counts = trace.TypeCounts();
  EXPECT_NEAR(static_cast<double>(counts[0]) / trace.size(), 0.40, 0.02);
  for (const auto& record : trace.records()) {
    EXPECT_LT(record.param_a, 1000u);
  }
}

TEST(QueryTraceTest, SynthesizeDeterministic) {
  const auto mix = PaperSimulationWorkload();
  const QueryTrace a = QueryTrace::Synthesize(mix, 1000, kSecond, 7, 10);
  const QueryTrace b = QueryTrace::Synthesize(mix, 1000, kSecond, 7, 10);
  EXPECT_EQ(a.records(), b.records());
}

TEST(TraceReplayerTest, DeliversAllRecordsInOrder) {
  const auto mix = PaperSimulationWorkload();
  const QueryTrace trace =
      QueryTrace::Synthesize(mix, 2000, kSecond / 4, 11, 0);
  ASSERT_GT(trace.size(), 100u);
  std::vector<uint32_t> seen;
  TraceReplayer replayer(&trace, {.speed = 50.0},
                         [&](const TraceRecord& r) {
                           seen.push_back(r.type_index);
                         });
  EXPECT_EQ(replayer.Run(), trace.size());
  ASSERT_EQ(seen.size(), trace.size());
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], trace.records()[i].type_index);
  }
}

TEST(TraceReplayerTest, SpeedControlsWallTime) {
  const auto mix = PaperSimulationWorkload();
  // 200 ms of trace at speed 2 should take ~100 ms.
  const QueryTrace trace =
      QueryTrace::Synthesize(mix, 1000, kSecond / 5, 13, 0);
  std::atomic<int> count{0};
  TraceReplayer replayer(&trace, {.speed = 2.0},
                         [&](const TraceRecord&) { count.fetch_add(1); });
  const auto start = std::chrono::steady_clock::now();
  replayer.Run();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(400));
  EXPECT_EQ(count.load(), static_cast<int>(trace.size()));
}

TEST(TraceReplayerTest, LoopsRepeatTheTrace) {
  const auto mix = PaperSimulationWorkload();
  const QueryTrace trace =
      QueryTrace::Synthesize(mix, 500, kSecond / 10, 17, 0);
  std::atomic<int> count{0};
  TraceReplayer replayer(&trace, {.speed = 20.0, .loops = 3},
                         [&](const TraceRecord&) { count.fetch_add(1); });
  EXPECT_EQ(replayer.Run(), 3 * trace.size());
}

TEST(TraceReplayerTest, StopsEarly) {
  const auto mix = PaperSimulationWorkload();
  const QueryTrace trace = QueryTrace::Synthesize(mix, 100, 10 * kSecond, 19, 0);
  TraceReplayer* handle = nullptr;
  std::atomic<int> count{0};
  TraceReplayer replayer(&trace, {.speed = 1.0}, [&](const TraceRecord&) {
    count.fetch_add(1);
    if (count.load() >= 3) handle->RequestStop();
  });
  handle = &replayer;
  EXPECT_LT(replayer.Run(), trace.size());
}

TEST(TraceReplayerTest, EmptyTraceDeliversNothing) {
  QueryTrace trace({"A"}, {});
  TraceReplayer replayer(&trace, {}, [](const TraceRecord&) { FAIL(); });
  EXPECT_EQ(replayer.Run(), 0u);
}

}  // namespace
}  // namespace bouncer::workload
