#include "src/workload/workload_spec.h"

#include <gtest/gtest.h>

namespace bouncer::workload {
namespace {

const Slo kSlo{18 * kMillisecond, 50 * kMillisecond, 0};

TEST(WorkloadSpecTest, FromMillisBuildsLogNormal) {
  const auto spec = QueryTypeSpec::FromMillis("slow", 0.1, 20.05, 12.51, kSlo);
  EXPECT_EQ(spec.name, "slow");
  EXPECT_DOUBLE_EQ(spec.proportion, 0.1);
  EXPECT_NEAR(spec.MeanProcessingMs(), 20.05, 0.01);
  EXPECT_EQ(spec.slo, kSlo);
}

TEST(WorkloadSpecTest, ValidateAcceptsPaperWorkload) {
  EXPECT_TRUE(PaperSimulationWorkload().Validate().ok());
  EXPECT_TRUE(PaperRealSystemMix().Validate().ok());
}

TEST(WorkloadSpecTest, ValidateRejectsEmpty) {
  WorkloadSpec empty;
  EXPECT_FALSE(empty.Validate().ok());
}

TEST(WorkloadSpecTest, ValidateRejectsBadProportions) {
  WorkloadSpec bad({QueryTypeSpec::FromMillis("a", 0.5, 1, 1, kSlo)});
  EXPECT_FALSE(bad.Validate().ok());  // Sums to 0.5.
  WorkloadSpec negative({QueryTypeSpec::FromMillis("a", -0.5, 1, 1, kSlo),
                         QueryTypeSpec::FromMillis("b", 1.5, 1, 1, kSlo)});
  EXPECT_FALSE(negative.Validate().ok());
}

TEST(WorkloadSpecTest, PaperWeightedMeanMatchesFootnote7) {
  // pt_wmean = 0.4*1.16 + 0.2*2.53 + 0.3*12.13 + 0.1*20.05 = 6.614 ms.
  const auto workload = PaperSimulationWorkload();
  EXPECT_NEAR(ToMillis(workload.WeightedMeanProcessingTime()), 6.614, 0.001);
}

TEST(WorkloadSpecTest, PaperFullLoadQpsMatchesSection53) {
  // QPS_full_load = 100 / 6.614 ms ~ 15.1 kQPS.
  const auto workload = PaperSimulationWorkload();
  EXPECT_NEAR(workload.FullLoadQps(100), 15119.0, 10.0);
}

TEST(WorkloadSpecTest, SampleTypeFollowsProportions) {
  const auto workload = PaperSimulationWorkload();
  Rng rng(3);
  std::vector<int> counts(workload.size(), 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[workload.SampleType(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.40, 0.01);  // fast
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.20, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.30, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.10, 0.01);  // slow
}

TEST(WorkloadSpecTest, SampleProcessingTimeMatchesDistribution) {
  const auto workload = PaperSimulationWorkload();
  Rng rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const Nanos pt = workload.SampleProcessingTime(3, rng);  // slow
    EXPECT_GT(pt, 0);
    sum += ToMillis(pt);
  }
  EXPECT_NEAR(sum / n, 20.05, 0.5);
}

TEST(WorkloadSpecTest, PopulateRegistryInOrder) {
  const auto workload = PaperSimulationWorkload();
  QueryTypeRegistry registry(kSlo);
  const auto ids = workload.PopulateRegistry(&registry);
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], 1u);
  EXPECT_EQ(ids[3], 4u);
  EXPECT_EQ(registry.Name(1), "fast");
  EXPECT_EQ(registry.Name(4), "slow");
  EXPECT_EQ(registry.GetSlo(4), kSlo);
}

TEST(WorkloadSpecTest, RealSystemMixMatchesPaperProportions) {
  const auto mix = PaperRealSystemMix();
  ASSERT_EQ(mix.size(), 11u);
  // Published percentages sum to 100.01%, so expect the normalized values.
  EXPECT_NEAR(mix.type(0).proportion, 0.1156, 1e-4);   // QT1
  EXPECT_NEAR(mix.type(8).proportion, 0.2635, 1e-4);   // QT9
  EXPECT_NEAR(mix.type(10).proportion, 0.2780, 1e-4);  // QT11
}

TEST(WorkloadSpecTest, RealSystemMixCostsAscend) {
  const auto mix = PaperRealSystemMix();
  for (size_t i = 1; i < mix.size(); ++i) {
    EXPECT_LT(mix.type(i - 1).processing_time.Mean(),
              mix.type(i).processing_time.Mean())
        << "between QT" << i << " and QT" << i + 1;
  }
}

}  // namespace
}  // namespace bouncer::workload
